//! Fault injection: a chaos adapter over any [`Wire`].
//!
//! The paper's client rides a vehicle and talks to the platform over a
//! cellular link — drops, duplicates, reordering, bit corruption and
//! outright outages are the normal case, not the exception. This module
//! makes those failures *first-class and reproducible*: [`ChaosWire`]
//! wraps any wire (a [`crate::client::LoopbackWire`] or a concurrent
//! [`crate::concurrent::Session`]) and perturbs traffic according to a
//! declarative [`FaultPlan`], driven by a seeded [`XorShiftRng`] and an
//! injected [`Clock`]. The same seed replays the same failure schedule
//! byte for byte, so every chaos test failure is a one-line repro.

use crate::client::Wire;
use crate::clock::Clock;
use crate::transport::TransportError;
use std::collections::VecDeque;

/// A small, fast, seedable PRNG (xorshift64*), implemented locally so the
/// chaos schedule never depends on an external crate's stream evolving.
///
/// Not cryptographic — it drives fault schedules and retry jitter, where
/// the only requirements are determinism and a decently mixed stream.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Seeds the generator. A zero seed (which xorshift cannot escape) is
    /// remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`, built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Returns `lo` when the
    /// range is empty or inverted.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// A scripted total outage: every frame sent while the clock reads inside
/// `[from_ms, until_ms)` vanishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// First millisecond of the outage (inclusive).
    pub from_ms: u64,
    /// First millisecond after the outage (exclusive).
    pub until_ms: u64,
}

impl Outage {
    /// `true` while the outage is in effect at time `now_ms`.
    pub fn contains(&self, now_ms: u64) -> bool {
        (self.from_ms..self.until_ms).contains(&now_ms)
    }
}

/// Declarative per-frame fault probabilities plus scripted outages.
///
/// Probabilities are independent per exchange; the fields default to 0, so
/// `FaultPlan { drop: 0.1, ..FaultPlan::default() }` reads like the fault
/// matrix it is. Timing fields are charged against the injected [`Clock`],
/// never against real wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability the request vanishes before reaching the server.
    pub drop: f64,
    /// Probability the reply is also delivered again on the *next*
    /// exchange (a retransmit duplicate).
    pub duplicate: f64,
    /// Probability the reply arrives too late for this exchange and is
    /// delivered on a later one instead (observable as a timeout now and a
    /// mismatched-sequence reply later).
    pub reorder: f64,
    /// Probability a frame gets one bit flipped in transit — applied
    /// independently to the request and the reply.
    pub corrupt: f64,
    /// Probability the reply is delayed by [`FaultPlan::delay_ms`] (still
    /// within the exchange).
    pub delay: f64,
    /// Probability the request reaches the server but the reply is lost
    /// (client-visible: identical to a drop; server-visible: work done).
    pub stall: f64,
    /// Extra latency charged by a `delay` fault, in ms.
    pub delay_ms: u64,
    /// Nominal round-trip latency charged on every completed exchange, ms.
    pub base_rtt_ms: u64,
    /// How long the wire waits before declaring a lost frame timed out, ms
    /// — the clock advance charged by drop/stall/reorder/outage faults.
    pub timeout_ms: u64,
    /// Scripted total outages, checked against the injected clock.
    pub outages: Vec<Outage>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            stall: 0.0,
            delay_ms: 20,
            base_rtt_ms: 5,
            timeout_ms: 100,
            outages: Vec::new(),
        }
    }
}

/// Counters of every fault the wire actually injected. Deterministic for a
/// fixed seed, plan and traffic — the chaos tests assert two runs produce
/// identical stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Exchanges attempted through the chaos wire.
    pub exchanges: u64,
    /// Requests dropped before the server.
    pub dropped: u64,
    /// Requests served whose reply was then lost.
    pub stalled: u64,
    /// Replies queued for duplicate delivery.
    pub duplicated: u64,
    /// Replies displaced to a later exchange.
    pub reordered: u64,
    /// Requests bit-corrupted in transit.
    pub corrupted_requests: u64,
    /// Replies bit-corrupted in transit.
    pub corrupted_replies: u64,
    /// Replies delayed by the delay fault.
    pub delayed: u64,
    /// Frames swallowed by a scripted outage.
    pub outage_drops: u64,
    /// Out-of-date replies (duplicates/reordered leftovers) delivered in
    /// place of a fresh exchange.
    pub stale_deliveries: u64,
}

/// A fault-injecting adapter over any [`Wire`].
///
/// Composable: the inner wire can be a `LoopbackWire` (single-threaded
/// tests), a concurrent `Session` (full-stack chaos under contention), or
/// even another `ChaosWire`. All perturbations are driven by the seeded
/// RNG, and all time is charged to the injected clock.
#[derive(Debug)]
pub struct ChaosWire<W, C> {
    inner: W,
    plan: FaultPlan,
    rng: XorShiftRng,
    clock: C,
    stats: ChaosStats,
    /// Replies displaced by duplicate/reorder faults, delivered (stale)
    /// ahead of future exchanges.
    pending: VecDeque<Vec<u8>>,
    /// The reply buffer handed back to the caller; reused per exchange.
    scratch: Vec<u8>,
    /// Scratch for bit-corrupted requests.
    request_scratch: Vec<u8>,
    /// When set, every injected fault is logged to stderr — the replay aid
    /// behind the `CHAOS_VERBOSE` env var in the chaos suite.
    trace: bool,
}

impl<W: Wire, C: Clock> ChaosWire<W, C> {
    /// Wraps `inner` with the given plan, RNG seed and clock.
    pub fn new(inner: W, plan: FaultPlan, seed: u64, clock: C) -> Self {
        Self {
            inner,
            plan,
            rng: XorShiftRng::new(seed),
            clock,
            stats: ChaosStats::default(),
            pending: VecDeque::new(),
            scratch: Vec::new(),
            request_scratch: Vec::new(),
            trace: false,
        }
    }

    /// Enables per-fault stderr logging for failure replay.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Counters of the faults injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// The wrapped wire.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    fn trace_event(&self, event: &str) {
        if self.trace {
            eprintln!(
                "[chaos t={}ms x={}] {event}",
                self.clock.now_ms(),
                self.stats.exchanges
            );
        }
    }

    /// Flips one RNG-chosen bit of `buf` (no-op on an empty buffer).
    fn flip_one_bit(rng: &mut XorShiftRng, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let r = rng.next_u64();
        let byte = (r as usize) % buf.len();
        let bit = ((r >> 32) % 8) as u8;
        buf[byte] ^= 1 << bit;
    }
}

impl<W: Wire, C: Clock> Wire for ChaosWire<W, C> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError> {
        self.stats.exchanges += 1;
        let now = self.clock.now_ms();

        // Scripted outage: the frame vanishes, the client burns its
        // timeout waiting.
        if self.plan.outages.iter().any(|o| o.contains(now)) {
            self.stats.outage_drops += 1;
            self.trace_event("outage: frame swallowed");
            self.clock.sleep_ms(self.plan.timeout_ms);
            return Err(TransportError::TimedOut);
        }

        // A reply displaced by an earlier duplicate/reorder fault is
        // delivered before any new traffic — the wire re-delivering an old
        // frame. Sequence numbers are what let the client reject it.
        if let Some(stale) = self.pending.pop_front() {
            self.stats.stale_deliveries += 1;
            self.trace_event("delivering stale reply");
            self.scratch = stale;
            self.clock.sleep_ms(self.plan.base_rtt_ms);
            return Ok(&self.scratch);
        }

        // One roll per fault class, drawn in a fixed order every exchange,
        // so the schedule for a given seed is stable and replayable.
        let roll_drop = self.rng.next_f64();
        let roll_stall = self.rng.next_f64();
        let roll_corrupt_req = self.rng.next_f64();
        let roll_dup = self.rng.next_f64();
        let roll_reorder = self.rng.next_f64();
        let roll_corrupt_reply = self.rng.next_f64();
        let roll_delay = self.rng.next_f64();

        if roll_drop < self.plan.drop {
            self.stats.dropped += 1;
            self.trace_event("request dropped");
            self.clock.sleep_ms(self.plan.timeout_ms);
            return Err(TransportError::TimedOut);
        }

        let corrupt_request = roll_corrupt_req < self.plan.corrupt;
        let reply = if corrupt_request {
            self.stats.corrupted_requests += 1;
            self.request_scratch.clear();
            self.request_scratch.extend_from_slice(request);
            Self::flip_one_bit(&mut self.rng, &mut self.request_scratch);
            self.inner.exchange(&self.request_scratch)?
        } else {
            self.inner.exchange(request)?
        };

        if roll_stall < self.plan.stall {
            // The server did the work; the reply never made it back.
            self.stats.stalled += 1;
            self.trace_event("reply stalled past timeout");
            self.clock.sleep_ms(self.plan.timeout_ms);
            return Err(TransportError::TimedOut);
        }

        self.scratch.clear();
        self.scratch.extend_from_slice(reply);
        self.clock.sleep_ms(self.plan.base_rtt_ms);
        if corrupt_request {
            self.trace_event("request corrupted (one bit)");
        }

        if roll_dup < self.plan.duplicate {
            self.stats.duplicated += 1;
            self.trace_event("reply duplicated");
            self.pending.push_back(self.scratch.clone());
        }
        if roll_corrupt_reply < self.plan.corrupt {
            self.stats.corrupted_replies += 1;
            self.trace_event("reply corrupted (one bit)");
            Self::flip_one_bit(&mut self.rng, &mut self.scratch);
        }
        if roll_delay < self.plan.delay {
            self.stats.delayed += 1;
            self.trace_event("reply delayed");
            self.clock.sleep_ms(self.plan.delay_ms);
        }
        if roll_reorder < self.plan.reorder {
            // The reply exists but lands after the client gave up on this
            // exchange: park it for later, report a timeout now.
            self.stats.reordered += 1;
            self.trace_event("reply reordered past timeout");
            self.pending.push_back(std::mem::take(&mut self.scratch));
            self.clock.sleep_ms(self.plan.timeout_ms);
            return Err(TransportError::TimedOut);
        }

        Ok(&self.scratch)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::clock::VirtualClock;

    /// A wire that echoes the request back as the reply.
    #[derive(Debug, Default)]
    struct EchoWire {
        reply: Vec<u8>,
        calls: u64,
    }

    impl Wire for EchoWire {
        fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError> {
            self.calls += 1;
            self.reply.clear();
            self.reply.extend_from_slice(request);
            Ok(&self.reply)
        }
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShiftRng::new(42);
        let mut b = XorShiftRng::new(42);
        for _ in 0..1_000 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_ne!(v, 0, "xorshift state collapsed");
        }
        let f = a.next_f64();
        assert!((0.0..1.0).contains(&f));
        // Zero seed must not produce the all-zero fixed point.
        assert_ne!(XorShiftRng::new(0).next_u64(), 0);
    }

    #[test]
    fn faultless_plan_is_transparent() {
        let clock = VirtualClock::new();
        let mut wire = ChaosWire::new(EchoWire::default(), FaultPlan::default(), 1, clock.clone());
        for i in 0..100u8 {
            let reply = wire.exchange(&[i, i + 1]).unwrap();
            assert_eq!(reply, [i, i + 1]);
        }
        let stats = wire.stats();
        assert_eq!(stats.exchanges, 100);
        assert_eq!(
            stats.dropped + stats.corrupted_replies + stats.duplicated,
            0
        );
        // Base RTT is still charged.
        assert_eq!(clock.now_ms(), 100 * FaultPlan::default().base_rtt_ms);
    }

    #[test]
    fn drop_fault_times_out_and_charges_timeout() {
        let clock = VirtualClock::new();
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::default()
        };
        let timeout = plan.timeout_ms;
        let mut wire = ChaosWire::new(EchoWire::default(), plan, 7, clock.clone());
        assert_eq!(wire.exchange(&[1]), Err(TransportError::TimedOut));
        assert_eq!(clock.now_ms(), timeout);
        assert_eq!(wire.stats().dropped, 1);
        assert_eq!(
            wire.inner().calls,
            0,
            "dropped request must not reach the server"
        );
    }

    #[test]
    fn duplicate_fault_redelivers_the_old_reply() {
        let clock = VirtualClock::new();
        let plan = FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::default()
        };
        let mut wire = ChaosWire::new(EchoWire::default(), plan, 3, clock);
        let first = wire.exchange(&[0xAA]).unwrap().to_vec();
        assert_eq!(first, [0xAA]);
        // The next exchange gets the *old* reply, not an echo of the new
        // request.
        let second = wire.exchange(&[0xBB]).unwrap();
        assert_eq!(second, [0xAA]);
        assert_eq!(wire.stats().stale_deliveries, 1);
    }

    #[test]
    fn reorder_fault_times_out_then_delivers_late() {
        let clock = VirtualClock::new();
        let plan = FaultPlan {
            reorder: 1.0,
            ..FaultPlan::default()
        };
        let mut wire = ChaosWire::new(EchoWire::default(), plan, 5, clock);
        assert_eq!(wire.exchange(&[0x01]), Err(TransportError::TimedOut));
        // The displaced reply arrives in place of the next exchange's.
        let late = wire.exchange(&[0x02]).unwrap();
        assert_eq!(late, [0x01]);
    }

    #[test]
    fn corrupt_fault_flips_exactly_one_bit() {
        let clock = VirtualClock::new();
        let plan = FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        };
        let mut wire = ChaosWire::new(EchoWire::default(), plan, 11, clock);
        let original = [0u8; 16];
        let reply = wire.exchange(&original).unwrap();
        // Both directions got one flip; the echo wire reflects the request
        // corruption and the reply corruption stacks on top, so the total
        // differing bits must be 1 or 2 (2 flips can collide back to 0 on
        // the same bit — with a fixed seed this draw does not).
        let differing: u32 = reply
            .iter()
            .zip(original.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!((1..=2).contains(&differing), "{differing} bits differ");
        let stats = wire.stats();
        assert_eq!(stats.corrupted_requests, 1);
        assert_eq!(stats.corrupted_replies, 1);
    }

    #[test]
    fn outage_window_swallows_frames_until_it_ends() {
        let clock = VirtualClock::new();
        let plan = FaultPlan {
            outages: vec![Outage {
                from_ms: 0,
                until_ms: 250,
            }],
            timeout_ms: 100,
            ..FaultPlan::default()
        };
        let mut wire = ChaosWire::new(EchoWire::default(), plan, 1, clock.clone());
        // t=0 and t=100 are inside the outage; t=200 also; t=300 is past it.
        assert_eq!(wire.exchange(&[1]), Err(TransportError::TimedOut));
        assert_eq!(wire.exchange(&[1]), Err(TransportError::TimedOut));
        assert_eq!(wire.exchange(&[1]), Err(TransportError::TimedOut));
        assert_eq!(clock.now_ms(), 300);
        assert!(wire.exchange(&[1]).is_ok());
        assert_eq!(wire.stats().outage_drops, 3);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let clock = VirtualClock::new();
            let plan = FaultPlan {
                drop: 0.2,
                duplicate: 0.1,
                reorder: 0.1,
                corrupt: 0.1,
                delay: 0.1,
                stall: 0.05,
                ..FaultPlan::default()
            };
            let mut wire = ChaosWire::new(EchoWire::default(), plan, 1234, clock);
            let mut outcomes = Vec::new();
            for i in 0..500u16 {
                outcomes.push(wire.exchange(&i.to_le_bytes()).map(<[u8]>::to_vec));
            }
            (outcomes, wire.stats())
        };
        let (a_out, a_stats) = run();
        let (b_out, b_stats) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a_stats, b_stats);
        // Sanity: the plan actually fired faults.
        assert!(a_stats.dropped > 0 && a_stats.duplicated > 0);
    }
}
