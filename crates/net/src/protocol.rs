//! Protocol messages between the EnviroMeter app and server.

use enviro_data::{Pollutant, QueryTuple, RawTuple, Timestamp};
use enviro_geo::Point;
use enviro_meter::{CoverRegion, LinearModel, ModelCover, RegionModel};

/// Version byte carried by the batch frames (`QueryBatch` / `ValueBatch`),
/// so the layout can evolve without re-tagging.
///
/// * **v1** — tuples only, no integrity protection (PR 2 layout).
/// * **v2** — adds a request/reply sequence number (so a resilient client
///   can discard duplicated or stale replies after a retry) and a trailing
///   CRC-32 over the frame (so a bit-corrupted batch is *detected* instead
///   of silently mis-answering).
/// * **v3** — adds the ingestion frames (`IngestBatch` / `IngestAck`) and a
///   cover **generation** number to `ValueBatch`, so a caching client can
///   tell its cover was rebuilt behind its back and refresh instead of
///   serving answers past `t_n`.
///
/// Encoders always emit v3; decoders accept v1–v3 frames and reject any
/// other version with a `Malformed` error. A v1 frame decodes with
/// sequence number 0; v1/v2 frames decode with generation 0. The ingest
/// frames are new in v3 and are rejected at any other version.
pub const BATCH_VERSION: u8 = 3;

/// The v2 layout (seq + CRC, no generation), still accepted by decoders.
pub const BATCH_VERSION_V2: u8 = 2;

/// The original, CRC-less batch layout, still accepted by decoders so
/// already-deployed phones keep working across the upgrade.
pub const BATCH_VERSION_V1: u8 = 1;

/// Upper bound on the tuples one batch frame may carry.
///
/// Decoders reject larger counts *before* allocating, so a hostile length
/// prefix cannot balloon server memory; clients chunk longer trajectories
/// into multiple frames.
pub const MAX_BATCH: usize = 4_096;

/// A client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A query tuple `q_l = (t_l, x_l, y_l)`: "interpolate the sensor value
    /// at my position" (the baseline's per-tuple message).
    Query {
        /// Query time `t_l`.
        time: Timestamp,
        /// Query position `(x_l, y_l)`.
        pos: Point,
    },
    /// A model request `e_l`: "send me the current model cover" (the
    /// model-cache initialization/refresh message).
    ModelRequest {
        /// The time the request is issued, so the server can pick the
        /// responsible window.
        time: Timestamp,
    },
    /// A trajectory chunk: up to [`MAX_BATCH`] query tuples answered in one
    /// round-trip, amortizing framing and latency over the chunk.
    ///
    /// The answer is a [`Response::ValueBatch`] with exactly one value per
    /// tuple, in order.
    QueryBatch {
        /// Client-chosen sequence number, echoed verbatim in the matching
        /// [`Response::ValueBatch`]. Lets a retrying client pair replies
        /// with requests and drop duplicates the wire re-delivered.
        /// Always 0 when decoded from a v1 frame.
        seq: u32,
        /// The query tuples, in trajectory order.
        queries: Vec<QueryTuple>,
    },
    /// A chunk of raw sensor tuples `b_i = (t_i, x_i, y_i, s_i)` to persist:
    /// the durable write path. Up to [`MAX_BATCH`] tuples per frame.
    ///
    /// The server WAL-appends and fsyncs the chunk *before* answering with
    /// a [`Response::IngestAck`]; a retransmitted `(source, seq)` pair is
    /// re-acked idempotently instead of applied twice, so a client that
    /// lost an ack can resend without duplicating data.
    IngestBatch {
        /// Stable identity of the sending sensor platform (e.g. one bus).
        /// Retransmission dedup is scoped per source.
        source: u64,
        /// Client-chosen sequence number, echoed in the matching ack.
        seq: u32,
        /// The sensed tuples, in arrival order. Every tuple must be finite.
        tuples: Vec<RawTuple>,
    },
}

/// A server → client response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The interpolated value `ŝ_l` for a [`Request::Query`].
    Value {
        /// The interpolated sensor value.
        value: f64,
    },
    /// The server has no data to answer from.
    NoData,
    /// One interpolated value (or miss) per tuple of a
    /// [`Request::QueryBatch`], in request order.
    ValueBatch {
        /// The sequence number of the [`Request::QueryBatch`] this answers,
        /// echoed verbatim. Always 0 when decoded from a v1 frame.
        seq: u32,
        /// The server's cover **generation** at answer time: a counter that
        /// the model-maintenance worker bumps on every atomic cover
        /// publication. A client holding a cached cover from an older
        /// generation knows to invalidate it. 0 when the server does not
        /// ingest (static covers never change) and in v1/v2 frames.
        generation: u64,
        /// `Some(ŝ_l)` per answerable tuple, `None` per miss.
        values: Vec<Option<f64>>,
    },
    /// The model cover `(t_n, µ, M)` for a [`Request::ModelRequest`].
    Cover(WireCover),
    /// Durability acknowledgement for a [`Request::IngestBatch`]: sent only
    /// after the chunk is WAL-appended and fsynced.
    IngestAck {
        /// The sequence number of the acked `IngestBatch`, echoed verbatim.
        seq: u32,
        /// The server's durability watermark after this chunk: total tuples
        /// accepted and fsynced so far. Monotone; survives any crash.
        durable_upto: u64,
    },
    /// The server is overloaded and shed this request before queueing it.
    ///
    /// Unlike [`Response::Error`] this is not the client's fault: the
    /// request was never looked at. A resilient client backs off for at
    /// least the hinted interval and retries; memory on the server stays
    /// bounded no matter how hard the fleet pushes.
    Busy {
        /// Server's suggestion for how long to back off before retrying,
        /// in milliseconds.
        retry_after_ms: u32,
    },
    /// The request could not be served; the connection stays usable.
    ///
    /// A malformed or unexpected message must degrade into this reply —
    /// never into a server panic or a torn connection: community-sensed
    /// deployments talk to fleets of flaky phones over lossy links, so a
    /// single corrupt frame taking down the endpoint is unacceptable.
    Error(ProtocolError),
}

/// Machine-readable reason classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be decoded (bad tag, truncation, bad payload).
    BadRequest,
    /// The request was well-formed but names an unsupported operation.
    Unsupported,
    /// The server failed internally while serving a valid request.
    Internal,
}

impl ErrorCode {
    /// Wire value of the code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::Internal => 3,
        }
    }

    /// Parses a wire value.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::Unsupported),
            3 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Stable text name (used by the text codec).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a stable text name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "bad-request" => Some(ErrorCode::BadRequest),
            "unsupported" => Some(ErrorCode::Unsupported),
            "internal" => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// The payload of an error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Why the request failed.
    pub code: ErrorCode,
    /// Human-readable diagnostic (bounded; not meant for parsing).
    pub message: String,
}

impl ProtocolError {
    /// Builds an error reply, truncating oversized diagnostics so a hostile
    /// peer cannot make us echo unbounded payloads.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        let mut message = message.into();
        if message.len() > Self::MAX_MESSAGE_BYTES {
            let mut cut = Self::MAX_MESSAGE_BYTES;
            while !message.is_char_boundary(cut) {
                cut -= 1;
            }
            message.truncate(cut);
        }
        Self { code, message }
    }

    /// Upper bound on the diagnostic length, on and off the wire.
    pub const MAX_MESSAGE_BYTES: usize = 512;

    /// The diagnostic as it goes on the wire: truncated to
    /// [`Self::MAX_MESSAGE_BYTES`] at a char boundary, so encoders stay
    /// within bounds even for errors built without [`Self::new`].
    pub fn wire_message(&self) -> &str {
        let mut cut = Self::MAX_MESSAGE_BYTES.min(self.message.len());
        while !self.message.is_char_boundary(cut) {
            cut -= 1;
        }
        &self.message[..cut]
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

/// A model cover in wire form: exactly the items §2.3 lists —
/// "(i) the coefficients of all the models in M, (ii) the cluster centroids
/// µ, and (iii) the time t_n until which the current model cover is valid".
#[derive(Debug, Clone, PartialEq)]
pub struct WireCover {
    /// Validity horizon `t_n`.
    pub valid_until: Timestamp,
    /// One entry per model, centroid included.
    pub regions: Vec<WireRegion>,
}

/// One region of a wire cover.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRegion {
    /// The cluster centroid `µ_j`.
    pub centroid: Point,
    /// The model coefficients: 1 value for a mean model,
    /// [`LinearModel::COEFFICIENT_COUNT`] for a linear model.
    pub model: WireModel,
}

/// Wire form of a region model.
#[derive(Debug, Clone, PartialEq)]
pub enum WireModel {
    /// Mean model: one coefficient.
    Mean(f64),
    /// Linear model: β, centers, scales.
    Linear([f64; LinearModel::COEFFICIENT_COUNT]),
}

impl WireCover {
    /// Converts a learned cover into wire form.
    pub fn from_cover(cover: &ModelCover) -> Self {
        Self {
            valid_until: cover.valid_until,
            regions: cover
                .regions
                .iter()
                .map(|r| WireRegion {
                    centroid: r.centroid,
                    model: match &r.model {
                        RegionModel::Mean(v) => WireModel::Mean(*v),
                        RegionModel::Linear(m) => WireModel::Linear(m.to_coefficients()),
                    },
                })
                .collect(),
        }
    }

    /// Reconstructs a queryable [`ModelCover`] on the client side.
    ///
    /// Training diagnostics are not transmitted (the phone does not need
    /// them), so they are zeroed in the reconstruction.
    pub fn into_cover(self, pollutant: Pollutant) -> ModelCover {
        ModelCover {
            pollutant,
            window_id: 0, // not transmitted; irrelevant to clients
            valid_until: self.valid_until,
            regions: self
                .regions
                .into_iter()
                .map(|r| CoverRegion {
                    centroid: r.centroid,
                    model: match r.model {
                        WireModel::Mean(v) => RegionModel::Mean(v),
                        WireModel::Linear(c) => {
                            RegionModel::Linear(LinearModel::from_coefficients(&c))
                        }
                    },
                    training_error_percent: 0.0,
                    population: 0,
                })
                .collect(),
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` when the cover carries no models.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enviro_meter::{AdKmnConfig, CoverBuilder};

    fn sample_cover() -> ModelCover {
        use enviro_data::{Dataset, RawTuple, WindowSpec, Windows};
        let tuples: Vec<RawTuple> = (0..60)
            .map(|i| {
                RawTuple::new(
                    Timestamp::from_secs(i),
                    Point::new((i % 10) as f64 * 50.0, (i / 10) as f64 * 50.0),
                    420.0 + (i % 9) as f64,
                )
            })
            .collect();
        let ds = Dataset::from_tuples(Pollutant::Co2, tuples).unwrap();
        let w = Windows::new(&ds, WindowSpec::ByCount(60)).next().unwrap();
        CoverBuilder::new(AdKmnConfig::default()).build(&w, Pollutant::Co2)
    }

    #[test]
    fn wire_roundtrip_preserves_predictions() {
        let cover = sample_cover();
        let wire = WireCover::from_cover(&cover);
        let back = wire.into_cover(Pollutant::Co2);
        assert_eq!(back.regions.len(), cover.regions.len());
        assert_eq!(back.valid_until, cover.valid_until);
        for (t, x, y) in [(0i64, 100.0, 100.0), (30, 425.0, 75.0), (59, 0.0, 0.0)] {
            let q = Point::new(x, y);
            let ts = Timestamp::from_secs(t);
            assert_eq!(cover.interpolate(ts, &q), back.interpolate(ts, &q));
        }
    }

    #[test]
    fn wire_cover_reflects_emptiness() {
        let empty = ModelCover {
            pollutant: Pollutant::Co2,
            window_id: 0,
            valid_until: Timestamp::ZERO,
            regions: Vec::new(),
        };
        let wire = WireCover::from_cover(&empty);
        assert!(wire.is_empty());
        assert_eq!(wire.len(), 0);
    }
}
