//! The mobile clients: the two Figure 7(b) baselines plus the batched
//! production client.
//!
//! [`BaselineClient`] and [`ModelCacheClient`] reproduce the paper's §2.3
//! comparison over a simulated link. [`EnviroClient`] is the deployment
//! client: it speaks `QueryBatch` frames over any [`Wire`] (a concurrent
//! session, a simulated link, …) and can optionally layer the model-cache
//! technique on top, answering locally while the cached cover is valid.

use crate::buffers;
use crate::clock::{Clock, SystemClock};
use crate::codec::WireCodec;
use crate::fault::XorShiftRng;
use crate::link::{LinkUsage, SimulatedLink};
use crate::protocol::{Request, Response, MAX_BATCH};
use crate::server::EnviroServer;
use crate::transport::TransportError;
use enviro_data::{Pollutant, QueryTuple, RawTuple, Timestamp};
use enviro_meter::{ModelCover, QueryOutcome};

/// The outcome of running one continuous query session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Interpolated value per query tuple (in trajectory order).
    pub values: Vec<Option<f64>>,
    /// Link usage totals (bytes include protocol overhead).
    pub usage: LinkUsage,
    /// Total virtual time to complete the continuous query, in seconds.
    pub elapsed_secs: f64,
    /// Number of server round-trips performed.
    pub server_exchanges: usize,
    /// Number of [`Response::Error`] replies received. The session keeps
    /// going (the affected tuples read as misses); a non-zero count flags
    /// a protocol-level problem worth investigating.
    pub protocol_errors: usize,
}

/// An error that ends a client session.
///
/// Note what is *not* here: a server-side [`Response::Error`] reply does
/// not end the session — it is counted in
/// [`SessionStats::protocol_errors`] and the session continues, because a
/// mobile client must survive a flaky server. Only a reply the client
/// cannot even decode is fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server's reply bytes failed to decode.
    BadReply(String),
    /// The transport underneath the session failed (e.g. server gone).
    Transport(TransportError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadReply(m) => write!(f, "undecodable server reply: {m}"),
            ClientError::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

/// Retry/deadline/backoff knobs for the resilient query path
/// ([`EnviroClient::query_resilient`]).
///
/// The backoff before retry *k* is `min(backoff_base_ms << (k-1),
/// backoff_max_ms)` with uniform jitter in the upper half of that value,
/// and every sleep is clamped to the remaining deadline — a chunk never
/// outlives `deadline_ms` no matter how the retries land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Per-chunk time budget on the injected clock, in ms. Once spent, the
    /// chunk's tuples read as [`QueryOutcome::Unavailable`].
    pub deadline_ms: u64,
    /// Retries after the first attempt (so at most `max_retries + 1`
    /// sends per chunk).
    pub max_retries: u32,
    /// Backoff before the first retry, in ms; doubles per retry.
    pub backoff_base_ms: u64,
    /// Ceiling on any single backoff sleep, in ms. Also the degraded-mode
    /// cool-off: an unreachable server is not re-probed more often than
    /// this in model-cache mode.
    pub backoff_max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            deadline_ms: 2_000,
            max_retries: 4,
            backoff_base_ms: 25,
            backoff_max_ms: 800,
        }
    }
}

/// Counters describing how hard the resilient path had to work.
///
/// Deterministic for a fixed seed, clock and fault schedule — the chaos
/// suite asserts that two identical runs produce identical stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Chunk or cover re-sends after a failed or rejected attempt.
    pub retries: u64,
    /// Transport-level failures (drops, stalls, outages) observed.
    pub timeouts: u64,
    /// Replies that failed to decode — bit corruption caught by the frame
    /// CRC (or by the fixed layout for unframed replies).
    pub corrupt_replies: u64,
    /// Well-formed replies rejected as not answering the outstanding
    /// request: wrong sequence number, wrong answer count, or wrong kind
    /// (duplicates and reordered leftovers).
    pub stale_replies: u64,
    /// [`Response::Busy`] shed replies from an overloaded server.
    pub busy_replies: u64,
    /// Tuples answered from an expired cover while the server was
    /// unreachable (model-cache degraded mode).
    pub stale_answers: u64,
    /// Tuples the client could not answer at all.
    pub unavailable: u64,
    /// Cached covers dropped because a reply carried a newer cover
    /// generation — background maintenance republished behind our back.
    pub invalidated_covers: u64,
}

/// The baseline technique: one server round-trip per query tuple — "simply
/// responds to each query tuple with the interpolated sensor value ŝ_l,
/// without caching the models".
#[derive(Debug)]
pub struct BaselineClient<C: WireCodec> {
    codec: C,
}

impl<C: WireCodec> BaselineClient<C> {
    /// Creates the client with its codec (must match the server's).
    pub fn new(codec: C) -> Self {
        Self { codec }
    }

    /// Runs a continuous query against `server` over `link`.
    pub fn run(
        &self,
        server: &EnviroServer<C>,
        trajectory: &[QueryTuple],
        link: &mut SimulatedLink,
    ) -> Result<SessionStats, ClientError> {
        let start = link.clock_secs();
        let mut values = Vec::with_capacity(trajectory.len());
        let mut exchanges = 0usize;
        let mut protocol_errors = 0usize;
        for q in trajectory {
            let req = self.codec.encode_request(&Request::Query {
                time: q.time,
                pos: q.pos,
            });
            let resp_bytes = server.handle_bytes(&req);
            link.exchange(req.len(), resp_bytes.len());
            exchanges += 1;
            let value = match self
                .codec
                .decode_response(&resp_bytes)
                .map_err(|e| ClientError::BadReply(e.to_string()))?
            {
                Response::Value { value } => Some(value),
                Response::NoData => None,
                Response::Error(_) => {
                    protocol_errors += 1;
                    None
                }
                // Cover/ValueBatch/IngestAck/Busy: protocol misuse; miss.
                Response::Cover(_)
                | Response::ValueBatch { .. }
                | Response::IngestAck { .. }
                | Response::Busy { .. } => None,
            };
            values.push(value);
        }
        Ok(SessionStats {
            values,
            usage: link.usage(),
            elapsed_secs: link.clock_secs() - start,
            server_exchanges: exchanges,
            protocol_errors,
        })
    }
}

/// The model-cache technique: download `(t_n, µ, M)` once, answer locally
/// while `t_l ≤ t_n`, refresh only on expiry.
///
/// One production refinement over the paper's sketch: when a refresh
/// returns a cover that is *already expired* for the requested time, the
/// server simply has nothing newer (sensing gap, end of deployment). The
/// client then serves from the stale cover without hammering the server on
/// every subsequent tuple, and resumes refreshing once a fetch yields a
/// live horizon again.
#[derive(Debug)]
pub struct ModelCacheClient<C: WireCodec> {
    codec: C,
    cached: Option<ModelCover>,
    /// Set when the last refresh proved the server has no fresher cover.
    server_exhausted: bool,
}

impl<C: WireCodec> ModelCacheClient<C> {
    /// Creates the client with an empty cache.
    pub fn new(codec: C) -> Self {
        Self {
            codec,
            cached: None,
            server_exhausted: false,
        }
    }

    /// The currently cached cover, if any.
    pub fn cached_cover(&self) -> Option<&ModelCover> {
        self.cached.as_ref()
    }

    /// Runs a continuous query against `server` over `link`.
    pub fn run(
        &mut self,
        server: &EnviroServer<C>,
        trajectory: &[QueryTuple],
        link: &mut SimulatedLink,
    ) -> Result<SessionStats, ClientError> {
        let start = link.clock_secs();
        let pollutant = server.platform().engine().dataset().pollutant();
        let mut values = Vec::with_capacity(trajectory.len());
        let mut exchanges = 0usize;
        let mut protocol_errors = 0usize;
        for q in trajectory {
            // The §2.3 check: is the cached cover still valid at t_l?
            let valid = self.cached.as_ref().is_some_and(|c| c.is_valid_at(q.time));
            if !valid && !self.server_exhausted {
                let req = self
                    .codec
                    .encode_request(&Request::ModelRequest { time: q.time });
                let resp_bytes = server.handle_bytes(&req);
                link.exchange(req.len(), resp_bytes.len());
                exchanges += 1;
                match self
                    .codec
                    .decode_response(&resp_bytes)
                    .map_err(|e| ClientError::BadReply(e.to_string()))?
                {
                    Response::Cover(wire) => {
                        let cover = wire.into_cover(pollutant);
                        // A cover already expired for t_l means the server
                        // has nothing fresher: serve stale, stop refreshing.
                        self.server_exhausted = !cover.is_valid_at(q.time);
                        self.cached = Some(cover);
                    }
                    Response::Error(_) => {
                        // Counted, but the cache (possibly stale) is kept:
                        // an error reply says nothing about our cover.
                        protocol_errors += 1;
                        self.server_exhausted = true;
                    }
                    _ => {
                        self.cached = None;
                        self.server_exhausted = true;
                    }
                }
            }
            values.push(
                self.cached
                    .as_ref()
                    .and_then(|c| c.interpolate(q.time, &q.pos)),
            );
        }
        Ok(SessionStats {
            values,
            usage: link.usage(),
            elapsed_secs: link.clock_secs() - start,
            server_exchanges: exchanges,
            protocol_errors,
        })
    }
}

/// One request/response exchange over some transport.
///
/// The returned reply slice stays valid until the next `exchange` call.
/// Implemented by [`crate::concurrent::Session`] (the real thread-pool
/// deployment) and [`LoopbackWire`] (in-process, with simulated-link byte
/// accounting), so [`EnviroClient`] runs unchanged over both.
pub trait Wire {
    /// Sends `request` and blocks for the reply.
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError>;
}

impl Wire for crate::concurrent::Session<'_> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError> {
        self.call_with(|out| out.extend_from_slice(request))
    }
}

/// A [`Wire`] that calls the server in-process and charges every exchange
/// to a [`SimulatedLink`] — the bandwidth-evaluation harness for
/// [`EnviroClient`].
pub struct LoopbackWire<'a, C: WireCodec> {
    server: &'a EnviroServer<C>,
    link: &'a mut SimulatedLink,
    reply: Vec<u8>,
}

impl<'a, C: WireCodec> LoopbackWire<'a, C> {
    /// Wires `server` and `link` together.
    pub fn new(server: &'a EnviroServer<C>, link: &'a mut SimulatedLink) -> Self {
        Self {
            server,
            link,
            reply: Vec::new(),
        }
    }
}

impl<C: WireCodec> Wire for LoopbackWire<'_, C> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError> {
        self.server.handle_bytes_into(request, &mut self.reply);
        self.link.exchange(request.len(), self.reply.len());
        Ok(&self.reply)
    }
}

/// The production mobile client: batched wire queries, optional model
/// caching.
///
/// Two serving modes, chosen per the query method the deployment runs:
///
/// * **Batched** (default) — trajectory chunks go to the server as
///   `QueryBatch` frames of up to `batch` tuples, amortizing framing and
///   round-trip cost. This is the only option for the raw-data methods
///   (naive/indexed/IDW), whose full window data never leaves the server.
/// * **Model-cache** (`with_model_cache(true)`) — the §2.3 technique:
///   download the cover once, answer locally while it is valid, refresh on
///   expiry (with the stale-serve refinement of [`ModelCacheClient`]).
///   Tuples the cover cannot answer are *not* sent upstream; like the
///   paper's client, a missing cover reads as a miss.
#[derive(Debug)]
pub struct EnviroClient<C: WireCodec> {
    codec: C,
    pollutant: Pollutant,
    batch: usize,
    model_cache: bool,
    cached: Option<ModelCover>,
    server_exhausted: bool,
    exchanges: usize,
    protocol_errors: usize,
    scratch: Vec<u8>,
    policy: RetryPolicy,
    clock: Box<dyn Clock>,
    rng: XorShiftRng,
    next_seq: u32,
    resilience: ResilienceStats,
    /// While the injected clock reads below this, the model-cache path
    /// serves stale answers without re-probing an unreachable server.
    degraded_until: u64,
    /// Highest cover generation seen in any reply (0 until a generation-
    /// stamping server answers). An increase invalidates the cached cover.
    last_generation: u64,
}

impl<C: WireCodec> EnviroClient<C> {
    /// Default batch size: big enough that framing overhead is negligible,
    /// small enough to keep per-chunk latency low on slow links.
    pub const DEFAULT_BATCH: usize = 64;

    /// Creates a batched client (no model cache) for `pollutant` data.
    pub fn new(codec: C, pollutant: Pollutant) -> Self {
        Self {
            codec,
            pollutant,
            batch: Self::DEFAULT_BATCH,
            model_cache: false,
            cached: None,
            server_exhausted: false,
            exchanges: 0,
            protocol_errors: 0,
            scratch: Vec::new(),
            policy: RetryPolicy::default(),
            clock: Box::new(SystemClock::new()),
            rng: XorShiftRng::new(0x5EED),
            next_seq: 0,
            resilience: ResilienceStats::default(),
            degraded_until: 0,
            last_generation: 0,
        }
    }

    /// Sets the tuples-per-frame cap (clamped to `1..=`[`MAX_BATCH`]).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.clamp(1, MAX_BATCH);
        self
    }

    /// Enables or disables the model-cache mode.
    pub fn with_model_cache(mut self, enabled: bool) -> Self {
        self.model_cache = enabled;
        self
    }

    /// Sets the retry/deadline policy for [`Self::query_resilient`].
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects the clock consulted for deadlines, backoff and the
    /// degraded-mode cool-off. The chaos suite shares one
    /// [`crate::clock::VirtualClock`] between the client and the fault
    /// layer, so no resilience test ever really sleeps.
    pub fn with_clock(mut self, clock: impl Clock + 'static) -> Self {
        self.clock = Box::new(clock);
        self
    }

    /// Seeds the backoff-jitter RNG (fixed seed ⇒ reproducible retries).
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng = XorShiftRng::new(seed);
        self
    }

    /// Server round-trips performed so far (all request kinds).
    pub fn exchanges(&self) -> usize {
        self.exchanges
    }

    /// [`Response::Error`] replies seen so far; the session keeps going.
    pub fn protocol_errors(&self) -> usize {
        self.protocol_errors
    }

    /// The currently cached cover, if any.
    pub fn cached_cover(&self) -> Option<&ModelCover> {
        self.cached.as_ref()
    }

    /// Counters from the resilient path (zero until it runs).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilience
    }

    /// The highest cover generation observed in any server reply (0 until
    /// a generation-stamping server has answered).
    pub fn last_generation(&self) -> u64 {
        self.last_generation
    }

    /// Records the cover generation stamped into a server reply.
    ///
    /// The first nonzero generation is the baseline — the client learned
    /// what epoch the server is in, nothing to invalidate. Any *increase*
    /// after that means the maintenance worker published fresher covers:
    /// the cached cover is dropped and the "server has nothing fresher"
    /// latch and degraded-mode cool-off are cleared, so the next miss
    /// refreshes instead of serving a cover the server has superseded.
    fn observe_generation(&mut self, generation: u64) {
        if generation <= self.last_generation {
            return; // same epoch, or a duplicated older reply
        }
        if self.last_generation != 0 {
            self.cached = None;
            self.server_exhausted = false;
            self.degraded_until = 0;
            self.resilience.invalidated_covers += 1;
        }
        self.last_generation = generation;
    }

    /// Per-chunk sequence numbers start at 1 and wrap around 0 — v1 frames
    /// decode with sequence 0, so 0 never matches a live chunk.
    fn take_seq(&mut self) -> u32 {
        self.next_seq = self.next_seq.wrapping_add(1);
        if self.next_seq == 0 {
            self.next_seq = 1;
        }
        self.next_seq
    }

    /// Answers `queries` over `wire`, appending one value per tuple to
    /// `out` (cleared first).
    ///
    /// Only an undecodable reply or a transport failure is an `Err`; a
    /// server-side [`Response::Error`] is counted and the affected tuples
    /// read as misses, because a mobile client must survive a flaky server.
    pub fn query_batch(
        &mut self,
        wire: &mut dyn Wire,
        queries: &[QueryTuple],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), ClientError> {
        out.clear();
        out.reserve(queries.len());
        if self.model_cache {
            for q in queries {
                let valid = self.cached.as_ref().is_some_and(|c| c.is_valid_at(q.time));
                if !valid && !self.server_exhausted {
                    self.refresh_cover(wire, q.time)?;
                }
                out.push(
                    self.cached
                        .as_ref()
                        .and_then(|c| c.interpolate(q.time, &q.pos)),
                );
            }
            return Ok(());
        }
        for chunk in queries.chunks(self.batch) {
            self.exchange_chunk(wire, chunk, out)?;
        }
        Ok(())
    }

    /// Sends one `QueryBatch` frame and appends its answers to `out`.
    fn exchange_chunk(
        &mut self,
        wire: &mut dyn Wire,
        chunk: &[QueryTuple],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), ClientError> {
        let seq = self.encode_chunk_request(chunk);
        let reply = wire.exchange(&self.scratch)?;
        self.exchanges += 1;
        match self
            .codec
            .decode_response(reply)
            .map_err(|e| ClientError::BadReply(e.to_string()))?
        {
            Response::ValueBatch {
                seq: reply_seq,
                generation,
                values,
            } => {
                self.observe_generation(generation);
                if reply_seq != seq {
                    return Err(ClientError::BadReply(format!(
                        "reply sequence {reply_seq} does not match request {seq}"
                    )));
                }
                if values.len() != chunk.len() {
                    return Err(ClientError::BadReply(format!(
                        "batch of {} answered with {} values",
                        chunk.len(),
                        values.len()
                    )));
                }
                out.extend_from_slice(&values);
                buffers::recycle_values(values);
            }
            Response::Error(_) => {
                self.protocol_errors += 1;
                out.resize(out.len() + chunk.len(), None);
            }
            // NoData or protocol misuse: the whole chunk reads as misses.
            _ => out.resize(out.len() + chunk.len(), None),
        }
        Ok(())
    }

    /// Encodes one `QueryBatch` frame for `chunk` into `self.scratch` and
    /// returns the sequence number it was stamped with.
    fn encode_chunk_request(&mut self, chunk: &[QueryTuple]) -> u32 {
        let seq = self.take_seq();
        let mut queries = buffers::take_queries();
        queries.extend_from_slice(chunk);
        let request = Request::QueryBatch { seq, queries };
        self.scratch.clear();
        self.codec.encode_request_into(&request, &mut self.scratch);
        if let Request::QueryBatch { queries, .. } = request {
            buffers::recycle_queries(queries);
        }
        seq
    }

    /// Answers `queries` over a lossy `wire`, appending one
    /// [`QueryOutcome`] per tuple to `out` (cleared first).
    ///
    /// The fault-tolerant sibling of [`Self::query_batch`]: every chunk is
    /// retried under the [`RetryPolicy`] (exponential backoff with jitter,
    /// clamped to the per-chunk deadline), replies are matched by sequence
    /// number so a duplicated or reordered frame can never answer the
    /// wrong chunk, and [`Response::Busy`] sheds back off by the server's
    /// hint. It never fails: a chunk whose retry budget is exhausted reads
    /// as [`QueryOutcome::Unavailable`], and in model-cache mode an
    /// unreachable server degrades to [`QueryOutcome::Stale`] answers from
    /// the last cover until a later refresh reconnects.
    pub fn query_resilient(
        &mut self,
        wire: &mut dyn Wire,
        queries: &[QueryTuple],
        out: &mut Vec<QueryOutcome>,
    ) {
        out.clear();
        out.reserve(queries.len());
        if self.model_cache {
            for q in queries {
                let outcome = self.resilient_model_answer(wire, q);
                out.push(outcome);
            }
            return;
        }
        for chunk in queries.chunks(self.batch) {
            self.exchange_chunk_resilient(wire, chunk, out);
        }
    }

    /// Sends one `QueryBatch` frame with retries, appending one outcome
    /// per tuple. Exhaustion reads as `Unavailable` — never an error.
    fn exchange_chunk_resilient(
        &mut self,
        wire: &mut dyn Wire,
        chunk: &[QueryTuple],
        out: &mut Vec<QueryOutcome>,
    ) {
        let seq = self.encode_chunk_request(chunk);
        let deadline = self.clock.now_ms() + self.policy.deadline_ms;
        let mut attempt: u32 = 0;
        loop {
            if attempt > self.policy.max_retries || self.clock.now_ms() >= deadline {
                self.resilience.unavailable += chunk.len() as u64;
                out.resize(out.len() + chunk.len(), QueryOutcome::Unavailable);
                return;
            }
            if attempt > 0 {
                self.resilience.retries += 1;
            }
            attempt += 1;
            match self.attempt_chunk(wire, seq, chunk.len()) {
                AttemptOutcome::Answered(values) => {
                    out.extend(values.iter().map(|v| QueryOutcome::Fresh(*v)));
                    buffers::recycle_values(values);
                    return;
                }
                AttemptOutcome::RetryAfter(ms) => {
                    let remaining = deadline.saturating_sub(self.clock.now_ms());
                    self.clock.sleep_ms(ms.min(remaining));
                }
                AttemptOutcome::Backoff => self.backoff_sleep(attempt, deadline),
                AttemptOutcome::RetryNow => {}
            }
        }
    }

    /// One send/receive attempt for the frame already in `self.scratch`.
    fn attempt_chunk(&mut self, wire: &mut dyn Wire, seq: u32, expected: usize) -> AttemptOutcome {
        self.exchanges += 1;
        let reply = match wire.exchange(&self.scratch) {
            Ok(r) => r,
            Err(_) => {
                self.resilience.timeouts += 1;
                return AttemptOutcome::Backoff;
            }
        };
        match self.codec.decode_response(reply) {
            Ok(Response::ValueBatch {
                seq: reply_seq,
                generation,
                values,
            }) => {
                self.observe_generation(generation);
                if reply_seq == seq && values.len() == expected {
                    AttemptOutcome::Answered(values)
                } else {
                    // A duplicate or reordered leftover from an earlier
                    // chunk: reject and listen again, no backoff needed.
                    self.resilience.stale_replies += 1;
                    buffers::recycle_values(values);
                    AttemptOutcome::RetryNow
                }
            }
            Ok(Response::Busy { retry_after_ms }) => {
                self.resilience.busy_replies += 1;
                AttemptOutcome::RetryAfter(u64::from(retry_after_ms))
            }
            Ok(Response::Error(_)) => {
                // Typically our request arrived corrupted and failed the
                // server-side CRC; the frame we hold is fine — re-send it.
                self.protocol_errors += 1;
                AttemptOutcome::Backoff
            }
            Ok(_) => {
                // A well-formed reply of the wrong kind: a displaced frame
                // from some other request. Reject like a stale sequence.
                self.resilience.stale_replies += 1;
                AttemptOutcome::RetryNow
            }
            Err(_) => {
                self.resilience.corrupt_replies += 1;
                AttemptOutcome::Backoff
            }
        }
    }

    /// Sleeps `min(base << (attempt-1), max)` with uniform jitter in the
    /// upper half, clamped to what remains of the deadline.
    fn backoff_sleep(&mut self, attempt: u32, deadline: u64) {
        let exp = attempt.saturating_sub(1).min(10);
        let cap = self
            .policy
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.policy.backoff_max_ms);
        if cap == 0 {
            return;
        }
        let ms = self.rng.next_in_range(cap / 2, cap);
        let remaining = deadline.saturating_sub(self.clock.now_ms());
        self.clock.sleep_ms(ms.min(remaining));
    }

    /// Answers one tuple in model-cache mode, degrading to stale answers
    /// while the server is unreachable and reconciling once it returns.
    fn resilient_model_answer(&mut self, wire: &mut dyn Wire, q: &QueryTuple) -> QueryOutcome {
        let valid = self.cached.as_ref().is_some_and(|c| c.is_valid_at(q.time));
        if !valid
            && self.clock.now_ms() >= self.degraded_until
            && !self.refresh_cover_resilient(wire, q.time)
        {
            // Unreachable or nothing fresher: cool off before probing
            // again instead of paying the full retry budget per tuple.
            self.degraded_until = self.clock.now_ms() + self.policy.backoff_max_ms;
        }
        match &self.cached {
            Some(c) if c.is_valid_at(q.time) => QueryOutcome::Fresh(c.interpolate(q.time, &q.pos)),
            Some(c) => {
                self.resilience.stale_answers += 1;
                QueryOutcome::Stale(c.interpolate(q.time, &q.pos))
            }
            None => {
                self.resilience.unavailable += 1;
                QueryOutcome::Unavailable
            }
        }
    }

    /// Fetches a cover with retries. Returns `true` only when the fetched
    /// cover is live at `time`; an expired cover (the server has nothing
    /// fresher) and an unreachable server both leave the client degraded,
    /// to be re-probed after the cool-off.
    fn refresh_cover_resilient(&mut self, wire: &mut dyn Wire, time: Timestamp) -> bool {
        self.scratch.clear();
        self.codec
            .encode_request_into(&Request::ModelRequest { time }, &mut self.scratch);
        let deadline = self.clock.now_ms() + self.policy.deadline_ms;
        let mut attempt: u32 = 0;
        loop {
            if attempt > self.policy.max_retries || self.clock.now_ms() >= deadline {
                return false;
            }
            if attempt > 0 {
                self.resilience.retries += 1;
            }
            attempt += 1;
            self.exchanges += 1;
            let reply = match wire.exchange(&self.scratch) {
                Ok(r) => r,
                Err(_) => {
                    self.resilience.timeouts += 1;
                    self.backoff_sleep(attempt, deadline);
                    continue;
                }
            };
            match self.codec.decode_response(reply) {
                Ok(Response::Cover(wire_cover)) => {
                    let cover = wire_cover.into_cover(self.pollutant);
                    let live = cover.is_valid_at(time);
                    // Keep the freshest cover we have: a duplicated reply
                    // carrying an old cover must not clobber a newer one.
                    if self
                        .cached
                        .as_ref()
                        .is_none_or(|c| cover.valid_until >= c.valid_until)
                    {
                        self.cached = Some(cover);
                    }
                    return live;
                }
                Ok(Response::NoData) => {
                    // The server answered: it has no cover at all.
                    self.cached = None;
                    return false;
                }
                Ok(Response::Busy { retry_after_ms }) => {
                    self.resilience.busy_replies += 1;
                    let remaining = deadline.saturating_sub(self.clock.now_ms());
                    self.clock
                        .sleep_ms(u64::from(retry_after_ms).min(remaining));
                }
                Ok(Response::Error(_)) => {
                    self.protocol_errors += 1;
                    self.backoff_sleep(attempt, deadline);
                }
                Ok(_) => {
                    self.resilience.stale_replies += 1;
                }
                Err(_) => {
                    self.resilience.corrupt_replies += 1;
                    self.backoff_sleep(attempt, deadline);
                }
            }
        }
    }

    /// Streams `tuples` to the server as `IngestBatch` frames of up to
    /// `batch` tuples, with the same retry/deadline/backoff discipline as
    /// [`Self::query_resilient`].
    ///
    /// Chunks are stop-and-wait: a chunk is re-sent (same sequence number)
    /// until a matching [`Response::IngestAck`] arrives or its budget is
    /// spent, then the next chunk goes out. The server deduplicates by
    /// `(source, seq)`, so a retransmit whose original *did* land is acked
    /// without a second append — together this gives exactly-once appends
    /// for every acked chunk. Never fails: chunks whose budget is spent
    /// are reported in [`IngestReport::failed_tuples`] and
    /// [`IngestReport::chunk_acked`], for the caller to replay later.
    pub fn ingest_resilient(
        &mut self,
        wire: &mut dyn Wire,
        source: u64,
        tuples: &[RawTuple],
    ) -> IngestReport {
        let mut report = IngestReport::default();
        for chunk in tuples.chunks(self.batch) {
            let seq = self.take_seq();
            self.scratch.clear();
            let request = Request::IngestBatch {
                source,
                seq,
                tuples: chunk.to_vec(),
            };
            self.codec.encode_request_into(&request, &mut self.scratch);
            let deadline = self.clock.now_ms() + self.policy.deadline_ms;
            let mut attempt: u32 = 0;
            let mut acked = false;
            while !acked {
                if attempt > self.policy.max_retries || self.clock.now_ms() >= deadline {
                    break;
                }
                if attempt > 0 {
                    self.resilience.retries += 1;
                }
                attempt += 1;
                match self.attempt_ingest(wire, seq) {
                    IngestAttempt::Acked(durable_upto) => {
                        report.durable_upto = report.durable_upto.max(durable_upto);
                        acked = true;
                    }
                    IngestAttempt::RetryAfter(ms) => {
                        let remaining = deadline.saturating_sub(self.clock.now_ms());
                        self.clock.sleep_ms(ms.min(remaining));
                    }
                    IngestAttempt::Backoff => self.backoff_sleep(attempt, deadline),
                    IngestAttempt::RetryNow => {}
                }
            }
            if acked {
                report.acked_tuples += chunk.len() as u64;
            } else {
                report.failed_tuples += chunk.len() as u64;
            }
            report.chunk_acked.push(acked);
        }
        report
    }

    /// One send/receive attempt for the ingest frame in `self.scratch`.
    fn attempt_ingest(&mut self, wire: &mut dyn Wire, seq: u32) -> IngestAttempt {
        self.exchanges += 1;
        let reply = match wire.exchange(&self.scratch) {
            Ok(r) => r,
            Err(_) => {
                self.resilience.timeouts += 1;
                return IngestAttempt::Backoff;
            }
        };
        match self.codec.decode_response(reply) {
            Ok(Response::IngestAck {
                seq: reply_seq,
                durable_upto,
            }) => {
                if reply_seq == seq {
                    IngestAttempt::Acked(durable_upto)
                } else {
                    // A duplicated ack for an earlier chunk: consume it and
                    // listen again for ours.
                    self.resilience.stale_replies += 1;
                    IngestAttempt::RetryNow
                }
            }
            Ok(Response::Busy { retry_after_ms }) => {
                self.resilience.busy_replies += 1;
                IngestAttempt::RetryAfter(u64::from(retry_after_ms))
            }
            Ok(Response::Error(_)) => {
                // Request corrupted in flight (server CRC) or a transient
                // server-side failure: the frame we hold is fine — re-send.
                self.protocol_errors += 1;
                IngestAttempt::Backoff
            }
            Ok(_) => {
                self.resilience.stale_replies += 1;
                IngestAttempt::RetryNow
            }
            Err(_) => {
                self.resilience.corrupt_replies += 1;
                IngestAttempt::Backoff
            }
        }
    }

    /// Fetches the cover responsible for `time`, mirroring
    /// [`ModelCacheClient`]'s refresh-and-stale-serve policy.
    fn refresh_cover(&mut self, wire: &mut dyn Wire, time: Timestamp) -> Result<(), ClientError> {
        self.scratch.clear();
        self.codec
            .encode_request_into(&Request::ModelRequest { time }, &mut self.scratch);
        let reply = wire.exchange(&self.scratch)?;
        self.exchanges += 1;
        match self
            .codec
            .decode_response(reply)
            .map_err(|e| ClientError::BadReply(e.to_string()))?
        {
            Response::Cover(wire_cover) => {
                let cover = wire_cover.into_cover(self.pollutant);
                self.server_exhausted = !cover.is_valid_at(time);
                self.cached = Some(cover);
            }
            Response::Error(_) => {
                self.protocol_errors += 1;
                self.server_exhausted = true;
            }
            _ => {
                self.cached = None;
                self.server_exhausted = true;
            }
        }
        Ok(())
    }
}

/// The outcome of one [`EnviroClient::ingest_resilient`] call.
///
/// Deterministic for a fixed seed, clock and fault schedule, like
/// [`ResilienceStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Tuples in chunks the server acknowledged as durable.
    pub acked_tuples: u64,
    /// Tuples in chunks whose retry budget was spent without an ack; the
    /// caller should replay them (the server-side dedup makes that safe).
    pub failed_tuples: u64,
    /// Highest durable watermark any ack reported (total tuples the server
    /// has retained from all sources).
    pub durable_upto: u64,
    /// Per-chunk ack flags, in send order — chunk `i` covered tuples
    /// `[i * batch, (i + 1) * batch)` of the input slice.
    pub chunk_acked: Vec<bool>,
}

/// What one resilient ingest attempt produced.
enum IngestAttempt {
    /// A matching `IngestAck`: the chunk is durable server-side.
    Acked(u64),
    /// The server shed the request; retry after its hint (ms).
    RetryAfter(u64),
    /// Transport failure or corruption; retry with exponential backoff.
    Backoff,
    /// A stale reply was consumed; re-send immediately, no backoff.
    RetryNow,
}

/// What one resilient send/receive attempt produced.
enum AttemptOutcome {
    /// A matching `ValueBatch`: the chunk is answered.
    Answered(Vec<Option<f64>>),
    /// The server shed the request; retry after its hint (ms).
    RetryAfter(u64),
    /// Transport failure or corruption; retry with exponential backoff.
    Backoff,
    /// A stale reply was consumed; re-send immediately, no backoff.
    RetryNow,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::codec::BinaryCodec;
    use crate::link::LinkProfile;
    use enviro_data::{LausanneSim, SimConfig, WindowSpec};
    use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};

    fn setup() -> (EnviroServer<BinaryCodec>, LausanneSim) {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 4 * 3_600,
            seed: 13,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(2 * 3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        (
            EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover),
            sim,
        )
    }

    #[test]
    fn baseline_one_exchange_per_tuple() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(50, 60, 1);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let stats = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut link)
            .unwrap();
        assert_eq!(stats.server_exchanges, 50);
        assert_eq!(stats.values.len(), 50);
        assert!(stats.values.iter().all(Option::is_some));
    }

    #[test]
    fn model_cache_fetches_once_within_validity() {
        let (server, sim) = setup();
        // 50 tuples × 60 s = 50 min, well inside one 2 h window.
        let traj = sim.continuous_trajectory(50, 60, 2);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        // At most 2 fetches (trajectory may straddle one window boundary).
        assert!(stats.server_exchanges <= 2, "{}", stats.server_exchanges);
        assert!(client.cached_cover().is_some());
        assert!(stats.values.iter().all(Option::is_some));
    }

    #[test]
    fn model_cache_refreshes_on_expiry() {
        let (server, sim) = setup();
        // 120 tuples × 120 s = 4 h: crosses the 2 h window boundary.
        let traj = sim.continuous_trajectory(120, 120, 3);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        assert!(stats.server_exchanges >= 2, "{}", stats.server_exchanges);
        assert!(stats.server_exchanges < 10);
    }

    #[test]
    fn model_cache_saves_bandwidth_and_time() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(100, 30, 4);

        let mut base_link = SimulatedLink::new(LinkProfile::GPRS);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let mut cache_link = SimulatedLink::new(LinkProfile::GPRS);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&server, &traj, &mut cache_link)
            .unwrap();

        assert!(
            cache.usage.sent_bytes * 10 < base.usage.sent_bytes,
            "sent: cache {} vs base {}",
            cache.usage.sent_bytes,
            base.usage.sent_bytes
        );
        assert!(
            cache.usage.received_bytes < base.usage.received_bytes,
            "received: cache {} vs base {}",
            cache.usage.received_bytes,
            base.usage.received_bytes
        );
        assert!(
            cache.elapsed_secs * 10.0 < base.elapsed_secs,
            "time: cache {} vs base {}",
            cache.elapsed_secs,
            base.elapsed_secs
        );
    }

    #[test]
    fn both_clients_agree_on_values() {
        // Both techniques evaluate the same model cover; answers must match.
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(40, 60, 5);
        let mut l1 = SimulatedLink::new(LinkProfile::IDEAL);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut l1)
            .unwrap();
        let mut l2 = SimulatedLink::new(LinkProfile::IDEAL);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&server, &traj, &mut l2)
            .unwrap();
        for (i, (a, b)) in base.values.iter().zip(&cache.values).enumerate() {
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() < 1e-9, "tuple {i}: {x} vs {y}")
                }
                (None, None) => {}
                other => panic!("tuple {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_platform_yields_no_values() {
        let platform = EnviroMeter::new(
            enviro_data::Dataset::new(enviro_data::Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            500.0,
        );
        let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
        let traj = vec![QueryTuple::new(
            enviro_data::Timestamp::ZERO,
            enviro_geo::Point::origin(),
        )];
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        assert_eq!(stats.values, vec![None]);
    }

    fn pollutant_of(server: &EnviroServer<BinaryCodec>) -> Pollutant {
        server.platform().engine().dataset().pollutant()
    }

    fn assert_values_match(a: &[Option<f64>], b: &[Option<f64>]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "tuple {i}: {x} vs {y}")
                }
                (None, None) => {}
                other => panic!("tuple {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn batched_client_matches_baseline_over_loopback() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(75, 60, 6);
        let mut base_link = SimulatedLink::new(LinkProfile::IDEAL);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_batch(16);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();

        assert_values_match(&base.values, &values);
        // 75 tuples at batch 16 → ceil(75/16) = 5 exchanges, not 75.
        assert_eq!(client.exchanges(), 5);
        assert_eq!(client.protocol_errors(), 0);
    }

    #[test]
    fn batched_client_matches_baseline_over_concurrent_session() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(60, 60, 7);
        let mut base_link = SimulatedLink::new(LinkProfile::IDEAL);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let transport = crate::concurrent::ConcurrentTransport::spawn(server, 2).unwrap();
        let mut session = transport.session();
        let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(25);
        let mut values = Vec::new();
        client
            .query_batch(&mut session, &traj, &mut values)
            .unwrap();
        assert_values_match(&base.values, &values);
    }

    #[test]
    fn model_cache_mode_matches_model_cache_client() {
        let (server, sim) = setup();
        // Crosses the 2 h window boundary so both clients must refresh.
        let traj = sim.continuous_trajectory(120, 120, 8);

        let mut cache_link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut reference = ModelCacheClient::new(BinaryCodec);
        let expected = reference.run(&server, &traj, &mut cache_link).unwrap();

        let mut client =
            EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_model_cache(true);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();

        assert_values_match(&expected.values, &values);
        assert_eq!(client.exchanges(), expected.server_exchanges);
        assert!(client.cached_cover().is_some());
    }

    #[test]
    fn batching_reduces_bytes_per_query() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(128, 60, 9);

        let mut base_link = SimulatedLink::new(LinkProfile::IDEAL);
        BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_batch(64);
        let mut batch_link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut batch_link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();

        let base_bytes = base_link.usage().sent_bytes + base_link.usage().received_bytes;
        let batch_bytes = batch_link.usage().sent_bytes + batch_link.usage().received_bytes;
        assert!(
            batch_bytes < base_bytes,
            "batch {batch_bytes} vs baseline {base_bytes} bytes"
        );
    }

    #[test]
    fn resilient_path_matches_plain_batched_on_clean_wire() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(75, 60, 10);

        let mut plain = EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_batch(16);
        let mut l1 = SimulatedLink::new(LinkProfile::IDEAL);
        let mut w1 = LoopbackWire::new(&server, &mut l1);
        let mut values = Vec::new();
        plain.query_batch(&mut w1, &traj, &mut values).unwrap();

        let mut resilient = EnviroClient::new(BinaryCodec, pollutant_of(&server))
            .with_batch(16)
            .with_clock(VirtualClock::new());
        let mut l2 = SimulatedLink::new(LinkProfile::IDEAL);
        let mut w2 = LoopbackWire::new(&server, &mut l2);
        let mut outcomes = Vec::new();
        resilient.query_resilient(&mut w2, &traj, &mut outcomes);

        assert!(outcomes.iter().all(QueryOutcome::is_fresh));
        let resilient_values: Vec<Option<f64>> = outcomes.iter().map(QueryOutcome::value).collect();
        assert_values_match(&values, &resilient_values);
        // A clean wire exercises none of the resilience machinery.
        assert_eq!(resilient.resilience_stats(), ResilienceStats::default());
        assert_eq!(resilient.exchanges(), plain.exchanges());
    }

    #[test]
    fn resilient_rejects_stale_replies_by_sequence() {
        use crate::fault::{ChaosWire, FaultPlan};
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(48, 60, 11);
        let clock = VirtualClock::new();
        let plan = FaultPlan {
            duplicate: 1.0, // every reply is re-delivered on the next exchange
            ..FaultPlan::default()
        };
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = ChaosWire::new(
            LoopbackWire::new(&server, &mut link),
            plan,
            17,
            clock.clone(),
        );
        let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2)
            .with_batch(16)
            .with_clock(clock)
            .with_rng_seed(1);
        let mut outcomes = Vec::new();
        client.query_resilient(&mut wire, &traj, &mut outcomes);
        // Chunks 2 and 3 each first receive chunk N-1's duplicated reply;
        // the sequence check rejects it and the retry gets the real one.
        assert!(outcomes.iter().all(QueryOutcome::is_fresh));
        assert_eq!(outcomes.len(), traj.len());
        let stats = client.resilience_stats();
        assert_eq!(stats.stale_replies, 2);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.unavailable, 0);
    }

    #[derive(Debug)]
    struct DeadWire;

    impl Wire for DeadWire {
        fn exchange(&mut self, _request: &[u8]) -> Result<&[u8], TransportError> {
            Err(TransportError::Disconnected)
        }
    }

    #[test]
    fn resilient_times_out_to_unavailable_on_dead_wire() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(5, 60, 12);
        let clock = VirtualClock::new();
        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server))
            .with_batch(2)
            .with_clock(clock.clone())
            .with_rng_seed(2);
        let mut outcomes = Vec::new();
        client.query_resilient(&mut DeadWire, &traj, &mut outcomes);
        assert_eq!(outcomes, vec![QueryOutcome::Unavailable; 5]);
        let stats = client.resilience_stats();
        assert_eq!(stats.unavailable, 5);
        // 3 chunks × (1 + max_retries) bounded attempts, all timed out.
        let per_chunk = 1 + u64::from(RetryPolicy::default().max_retries);
        assert_eq!(stats.timeouts, 3 * per_chunk);
        assert_eq!(stats.retries, 3 * (per_chunk - 1));
        // Backoff slept on the virtual clock only, within each deadline.
        assert!(clock.now_ms() <= 3 * RetryPolicy::default().deadline_ms);
    }

    /// A wire that serves canned reply frames before delegating to the
    /// real server — for scripting Busy/corrupt first contacts.
    struct CannedWire<'a> {
        server: &'a EnviroServer<BinaryCodec>,
        canned: std::collections::VecDeque<Vec<u8>>,
        reply: Vec<u8>,
    }

    impl Wire for CannedWire<'_> {
        fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError> {
            self.reply = match self.canned.pop_front() {
                Some(r) => r,
                None => self.server.handle_bytes(request),
            };
            Ok(&self.reply)
        }
    }

    #[test]
    fn resilient_backs_off_on_busy_by_the_server_hint() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(10, 60, 13);
        let clock = VirtualClock::new();
        let busy = BinaryCodec.encode_response(&Response::Busy { retry_after_ms: 40 });
        let mut wire = CannedWire {
            server: &server,
            canned: [busy].into(),
            reply: Vec::new(),
        };
        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server))
            .with_clock(clock.clone())
            .with_rng_seed(3);
        let mut outcomes = Vec::new();
        client.query_resilient(&mut wire, &traj, &mut outcomes);
        assert!(outcomes.iter().all(QueryOutcome::is_fresh));
        let stats = client.resilience_stats();
        assert_eq!(stats.busy_replies, 1);
        assert_eq!(stats.retries, 1);
        // The sleep honoured the server's 40 ms hint exactly.
        assert_eq!(clock.now_ms(), 40);
    }

    #[test]
    fn resilient_retries_through_corrupt_replies() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(10, 60, 14);
        let clock = VirtualClock::new();
        let mut wire = CannedWire {
            server: &server,
            canned: [vec![0xFF, 0x00, 0x12]].into(),
            reply: Vec::new(),
        };
        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server))
            .with_clock(clock.clone())
            .with_rng_seed(4);
        let mut outcomes = Vec::new();
        client.query_resilient(&mut wire, &traj, &mut outcomes);
        assert!(outcomes.iter().all(QueryOutcome::is_fresh));
        let stats = client.resilience_stats();
        assert_eq!(stats.corrupt_replies, 1);
        assert_eq!(stats.retries, 1);
        assert!(clock.now_ms() > 0, "backoff must consult the clock");
    }

    #[test]
    fn model_cache_degrades_to_stale_and_reconnects() {
        use crate::fault::{ChaosWire, FaultPlan, Outage};
        let (server, sim) = setup();
        // Two tuples, one per 2 h window (times pinned inside the data so
        // the reconnected server really has a fresher cover for the
        // second): the second tuple forces a refresh.
        let base = sim.continuous_trajectory(2, 60, 15);
        let traj = [
            QueryTuple::new(enviro_data::Timestamp::from_secs(3_600), base[0].pos),
            QueryTuple::new(enviro_data::Timestamp::from_secs(3 * 3_600), base[1].pos),
        ];
        let clock = VirtualClock::new();
        let plan = FaultPlan {
            outages: vec![Outage {
                from_ms: 1,
                until_ms: 10_000,
            }],
            ..FaultPlan::default()
        };
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = ChaosWire::new(
            LoopbackWire::new(&server, &mut link),
            plan,
            19,
            clock.clone(),
        );
        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server))
            .with_model_cache(true)
            .with_clock(clock.clone())
            .with_rng_seed(5);
        let mut out = Vec::new();

        // t=0 ms: before the outage, the window-1 cover downloads cleanly.
        client.query_resilient(&mut wire, &traj[..1], &mut out);
        assert!(out[0].is_fresh());

        // Inside the outage: the window-2 refresh exhausts its retries and
        // the client serves the expired window-1 cover instead.
        clock.advance(10);
        client.query_resilient(&mut wire, &traj[1..], &mut out);
        assert!(out[0].is_stale(), "{:?}", out[0]);
        assert!(client.resilience_stats().stale_answers >= 1);
        let timeouts_during_outage = client.resilience_stats().timeouts;
        assert!(timeouts_during_outage > 0);

        // Still degraded: within the cool-off no refresh is even attempted.
        client.query_resilient(&mut wire, &traj[1..], &mut out);
        assert!(out[0].is_stale());
        assert_eq!(client.resilience_stats().timeouts, timeouts_during_outage);

        // Past the outage and cool-off: reconnect, reconcile, serve fresh.
        clock.advance(20_000);
        client.query_resilient(&mut wire, &traj[1..], &mut out);
        assert!(out[0].is_fresh(), "{:?}", out[0]);
    }

    #[test]
    fn batched_client_survives_empty_platform() {
        let platform = EnviroMeter::new(
            enviro_data::Dataset::new(enviro_data::Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            500.0,
        );
        let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
        let traj =
            vec![QueryTuple::new(enviro_data::Timestamp::ZERO, enviro_geo::Point::origin()); 5];
        let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(2);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();
        assert_eq!(values, vec![None; 5]);
        assert_eq!(client.protocol_errors(), 0);
    }

    fn sample_stream(n: i64) -> Vec<RawTuple> {
        (0..n)
            .map(|i| {
                RawTuple::new(
                    Timestamp::from_secs(600 + i),
                    enviro_geo::Point::new(i as f64 * 15.0, -100.0),
                    420.0 + i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn ingest_resilient_chunks_and_reports_durability() {
        let (server, _sim) = setup();
        let dir = std::env::temp_dir().join(format!("enviro-client-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = std::sync::Arc::new(
            crate::ingest::IngestState::open(
                &dir,
                enviro_storage::WalConfig::default(),
                crate::ingest::IngestConfig::default(),
            )
            .unwrap(),
        );
        let server = server.with_ingest(std::sync::Arc::clone(&state));
        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_batch(8);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);

        let tuples = sample_stream(20);
        let report = client.ingest_resilient(&mut wire, 42, &tuples);
        assert_eq!(report.acked_tuples, 20);
        assert_eq!(report.failed_tuples, 0);
        assert_eq!(report.durable_upto, 20);
        assert_eq!(report.chunk_acked, vec![true; 3]); // 8 + 8 + 4
        assert_eq!(state.stats().durable_tuples, 20);
        assert_eq!(client.resilience_stats(), ResilienceStats::default());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_resilient_survives_a_dead_wire() {
        let clock = VirtualClock::new();
        let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2)
            .with_batch(4)
            .with_clock(clock)
            .with_rng_seed(3);
        let tuples = sample_stream(8);
        let report = client.ingest_resilient(&mut DeadWire, 9, &tuples);
        assert_eq!(report.acked_tuples, 0);
        assert_eq!(report.failed_tuples, 8);
        assert_eq!(report.durable_upto, 0);
        assert_eq!(report.chunk_acked, vec![false, false]);
        assert!(client.resilience_stats().timeouts > 0);
    }

    #[test]
    fn generation_bump_invalidates_cached_cover() {
        let (server, _sim) = setup();
        let cover = server
            .platform()
            .cover_at(Timestamp::from_secs(600))
            .unwrap()
            .clone();
        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_batch(4);
        client.cached = Some(cover);
        client.server_exhausted = true;

        let reply = |seq: u32, generation: u64| {
            BinaryCodec.encode_response(&Response::ValueBatch {
                seq,
                generation,
                values: vec![None],
            })
        };
        let mut wire = CannedWire {
            server: &server,
            canned: [reply(1, 7), reply(2, 7), reply(3, 9)].into(),
            reply: Vec::new(),
        };
        let q = vec![QueryTuple::new(
            Timestamp::from_secs(600),
            enviro_geo::Point::new(0.0, -200.0),
        )];
        let mut out = Vec::new();

        // The first nonzero generation is the baseline: learning which
        // epoch the server is in must not drop a perfectly good cover.
        client.query_batch(&mut wire, &q, &mut out).unwrap();
        assert_eq!(client.last_generation(), 7);
        assert!(client.cached_cover().is_some());

        // The same generation again: still nothing to invalidate.
        client.query_batch(&mut wire, &q, &mut out).unwrap();
        assert_eq!(client.resilience_stats().invalidated_covers, 0);

        // A bump: background maintenance superseded the cached cover.
        client.query_batch(&mut wire, &q, &mut out).unwrap();
        assert_eq!(client.last_generation(), 9);
        assert!(client.cached_cover().is_none());
        assert!(!client.server_exhausted);
        assert_eq!(client.resilience_stats().invalidated_covers, 1);
    }
}
