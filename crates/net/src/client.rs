//! The mobile clients: the two Figure 7(b) baselines plus the batched
//! production client.
//!
//! [`BaselineClient`] and [`ModelCacheClient`] reproduce the paper's §2.3
//! comparison over a simulated link. [`EnviroClient`] is the deployment
//! client: it speaks `QueryBatch` frames over any [`Wire`] (a concurrent
//! session, a simulated link, …) and can optionally layer the model-cache
//! technique on top, answering locally while the cached cover is valid.

use crate::buffers;
use crate::codec::WireCodec;
use crate::link::{LinkUsage, SimulatedLink};
use crate::protocol::{Request, Response, MAX_BATCH};
use crate::server::EnviroServer;
use crate::transport::TransportError;
use enviro_data::{Pollutant, QueryTuple, Timestamp};
use enviro_meter::ModelCover;

/// The outcome of running one continuous query session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Interpolated value per query tuple (in trajectory order).
    pub values: Vec<Option<f64>>,
    /// Link usage totals (bytes include protocol overhead).
    pub usage: LinkUsage,
    /// Total virtual time to complete the continuous query, in seconds.
    pub elapsed_secs: f64,
    /// Number of server round-trips performed.
    pub server_exchanges: usize,
    /// Number of [`Response::Error`] replies received. The session keeps
    /// going (the affected tuples read as misses); a non-zero count flags
    /// a protocol-level problem worth investigating.
    pub protocol_errors: usize,
}

/// An error that ends a client session.
///
/// Note what is *not* here: a server-side [`Response::Error`] reply does
/// not end the session — it is counted in
/// [`SessionStats::protocol_errors`] and the session continues, because a
/// mobile client must survive a flaky server. Only a reply the client
/// cannot even decode is fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server's reply bytes failed to decode.
    BadReply(String),
    /// The transport underneath the session failed (e.g. server gone).
    Transport(TransportError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadReply(m) => write!(f, "undecodable server reply: {m}"),
            ClientError::Transport(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        ClientError::Transport(e)
    }
}

/// The baseline technique: one server round-trip per query tuple — "simply
/// responds to each query tuple with the interpolated sensor value ŝ_l,
/// without caching the models".
#[derive(Debug)]
pub struct BaselineClient<C: WireCodec> {
    codec: C,
}

impl<C: WireCodec> BaselineClient<C> {
    /// Creates the client with its codec (must match the server's).
    pub fn new(codec: C) -> Self {
        Self { codec }
    }

    /// Runs a continuous query against `server` over `link`.
    pub fn run(
        &self,
        server: &EnviroServer<C>,
        trajectory: &[QueryTuple],
        link: &mut SimulatedLink,
    ) -> Result<SessionStats, ClientError> {
        let start = link.clock_secs();
        let mut values = Vec::with_capacity(trajectory.len());
        let mut exchanges = 0usize;
        let mut protocol_errors = 0usize;
        for q in trajectory {
            let req = self.codec.encode_request(&Request::Query {
                time: q.time,
                pos: q.pos,
            });
            let resp_bytes = server.handle_bytes(&req);
            link.exchange(req.len(), resp_bytes.len());
            exchanges += 1;
            let value = match self
                .codec
                .decode_response(&resp_bytes)
                .map_err(|e| ClientError::BadReply(e.to_string()))?
            {
                Response::Value { value } => Some(value),
                Response::NoData => None,
                Response::Error(_) => {
                    protocol_errors += 1;
                    None
                }
                // Cover/ValueBatch: protocol misuse; treat as miss.
                Response::Cover(_) | Response::ValueBatch { .. } => None,
            };
            values.push(value);
        }
        Ok(SessionStats {
            values,
            usage: link.usage(),
            elapsed_secs: link.clock_secs() - start,
            server_exchanges: exchanges,
            protocol_errors,
        })
    }
}

/// The model-cache technique: download `(t_n, µ, M)` once, answer locally
/// while `t_l ≤ t_n`, refresh only on expiry.
///
/// One production refinement over the paper's sketch: when a refresh
/// returns a cover that is *already expired* for the requested time, the
/// server simply has nothing newer (sensing gap, end of deployment). The
/// client then serves from the stale cover without hammering the server on
/// every subsequent tuple, and resumes refreshing once a fetch yields a
/// live horizon again.
#[derive(Debug)]
pub struct ModelCacheClient<C: WireCodec> {
    codec: C,
    cached: Option<ModelCover>,
    /// Set when the last refresh proved the server has no fresher cover.
    server_exhausted: bool,
}

impl<C: WireCodec> ModelCacheClient<C> {
    /// Creates the client with an empty cache.
    pub fn new(codec: C) -> Self {
        Self {
            codec,
            cached: None,
            server_exhausted: false,
        }
    }

    /// The currently cached cover, if any.
    pub fn cached_cover(&self) -> Option<&ModelCover> {
        self.cached.as_ref()
    }

    /// Runs a continuous query against `server` over `link`.
    pub fn run(
        &mut self,
        server: &EnviroServer<C>,
        trajectory: &[QueryTuple],
        link: &mut SimulatedLink,
    ) -> Result<SessionStats, ClientError> {
        let start = link.clock_secs();
        let pollutant = server.platform().engine().dataset().pollutant();
        let mut values = Vec::with_capacity(trajectory.len());
        let mut exchanges = 0usize;
        let mut protocol_errors = 0usize;
        for q in trajectory {
            // The §2.3 check: is the cached cover still valid at t_l?
            let valid = self.cached.as_ref().is_some_and(|c| c.is_valid_at(q.time));
            if !valid && !self.server_exhausted {
                let req = self
                    .codec
                    .encode_request(&Request::ModelRequest { time: q.time });
                let resp_bytes = server.handle_bytes(&req);
                link.exchange(req.len(), resp_bytes.len());
                exchanges += 1;
                match self
                    .codec
                    .decode_response(&resp_bytes)
                    .map_err(|e| ClientError::BadReply(e.to_string()))?
                {
                    Response::Cover(wire) => {
                        let cover = wire.into_cover(pollutant);
                        // A cover already expired for t_l means the server
                        // has nothing fresher: serve stale, stop refreshing.
                        self.server_exhausted = !cover.is_valid_at(q.time);
                        self.cached = Some(cover);
                    }
                    Response::Error(_) => {
                        // Counted, but the cache (possibly stale) is kept:
                        // an error reply says nothing about our cover.
                        protocol_errors += 1;
                        self.server_exhausted = true;
                    }
                    _ => {
                        self.cached = None;
                        self.server_exhausted = true;
                    }
                }
            }
            values.push(
                self.cached
                    .as_ref()
                    .and_then(|c| c.interpolate(q.time, &q.pos)),
            );
        }
        Ok(SessionStats {
            values,
            usage: link.usage(),
            elapsed_secs: link.clock_secs() - start,
            server_exchanges: exchanges,
            protocol_errors,
        })
    }
}

/// One request/response exchange over some transport.
///
/// The returned reply slice stays valid until the next `exchange` call.
/// Implemented by [`crate::concurrent::Session`] (the real thread-pool
/// deployment) and [`LoopbackWire`] (in-process, with simulated-link byte
/// accounting), so [`EnviroClient`] runs unchanged over both.
pub trait Wire {
    /// Sends `request` and blocks for the reply.
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError>;
}

impl Wire for crate::concurrent::Session<'_> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError> {
        self.call_with(|out| out.extend_from_slice(request))
    }
}

/// A [`Wire`] that calls the server in-process and charges every exchange
/// to a [`SimulatedLink`] — the bandwidth-evaluation harness for
/// [`EnviroClient`].
pub struct LoopbackWire<'a, C: WireCodec> {
    server: &'a EnviroServer<C>,
    link: &'a mut SimulatedLink,
    reply: Vec<u8>,
}

impl<'a, C: WireCodec> LoopbackWire<'a, C> {
    /// Wires `server` and `link` together.
    pub fn new(server: &'a EnviroServer<C>, link: &'a mut SimulatedLink) -> Self {
        Self {
            server,
            link,
            reply: Vec::new(),
        }
    }
}

impl<C: WireCodec> Wire for LoopbackWire<'_, C> {
    fn exchange(&mut self, request: &[u8]) -> Result<&[u8], TransportError> {
        self.server.handle_bytes_into(request, &mut self.reply);
        self.link.exchange(request.len(), self.reply.len());
        Ok(&self.reply)
    }
}

/// The production mobile client: batched wire queries, optional model
/// caching.
///
/// Two serving modes, chosen per the query method the deployment runs:
///
/// * **Batched** (default) — trajectory chunks go to the server as
///   `QueryBatch` frames of up to `batch` tuples, amortizing framing and
///   round-trip cost. This is the only option for the raw-data methods
///   (naive/indexed/IDW), whose full window data never leaves the server.
/// * **Model-cache** (`with_model_cache(true)`) — the §2.3 technique:
///   download the cover once, answer locally while it is valid, refresh on
///   expiry (with the stale-serve refinement of [`ModelCacheClient`]).
///   Tuples the cover cannot answer are *not* sent upstream; like the
///   paper's client, a missing cover reads as a miss.
#[derive(Debug)]
pub struct EnviroClient<C: WireCodec> {
    codec: C,
    pollutant: Pollutant,
    batch: usize,
    model_cache: bool,
    cached: Option<ModelCover>,
    server_exhausted: bool,
    exchanges: usize,
    protocol_errors: usize,
    scratch: Vec<u8>,
}

impl<C: WireCodec> EnviroClient<C> {
    /// Default batch size: big enough that framing overhead is negligible,
    /// small enough to keep per-chunk latency low on slow links.
    pub const DEFAULT_BATCH: usize = 64;

    /// Creates a batched client (no model cache) for `pollutant` data.
    pub fn new(codec: C, pollutant: Pollutant) -> Self {
        Self {
            codec,
            pollutant,
            batch: Self::DEFAULT_BATCH,
            model_cache: false,
            cached: None,
            server_exhausted: false,
            exchanges: 0,
            protocol_errors: 0,
            scratch: Vec::new(),
        }
    }

    /// Sets the tuples-per-frame cap (clamped to `1..=`[`MAX_BATCH`]).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.clamp(1, MAX_BATCH);
        self
    }

    /// Enables or disables the model-cache mode.
    pub fn with_model_cache(mut self, enabled: bool) -> Self {
        self.model_cache = enabled;
        self
    }

    /// Server round-trips performed so far (all request kinds).
    pub fn exchanges(&self) -> usize {
        self.exchanges
    }

    /// [`Response::Error`] replies seen so far; the session keeps going.
    pub fn protocol_errors(&self) -> usize {
        self.protocol_errors
    }

    /// The currently cached cover, if any.
    pub fn cached_cover(&self) -> Option<&ModelCover> {
        self.cached.as_ref()
    }

    /// Answers `queries` over `wire`, appending one value per tuple to
    /// `out` (cleared first).
    ///
    /// Only an undecodable reply or a transport failure is an `Err`; a
    /// server-side [`Response::Error`] is counted and the affected tuples
    /// read as misses, because a mobile client must survive a flaky server.
    pub fn query_batch(
        &mut self,
        wire: &mut dyn Wire,
        queries: &[QueryTuple],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), ClientError> {
        out.clear();
        out.reserve(queries.len());
        if self.model_cache {
            for q in queries {
                let valid = self.cached.as_ref().is_some_and(|c| c.is_valid_at(q.time));
                if !valid && !self.server_exhausted {
                    self.refresh_cover(wire, q.time)?;
                }
                out.push(
                    self.cached
                        .as_ref()
                        .and_then(|c| c.interpolate(q.time, &q.pos)),
                );
            }
            return Ok(());
        }
        for chunk in queries.chunks(self.batch) {
            self.exchange_chunk(wire, chunk, out)?;
        }
        Ok(())
    }

    /// Sends one `QueryBatch` frame and appends its answers to `out`.
    fn exchange_chunk(
        &mut self,
        wire: &mut dyn Wire,
        chunk: &[QueryTuple],
        out: &mut Vec<Option<f64>>,
    ) -> Result<(), ClientError> {
        let mut queries = buffers::take_queries();
        queries.extend_from_slice(chunk);
        let request = Request::QueryBatch { queries };
        self.scratch.clear();
        self.codec.encode_request_into(&request, &mut self.scratch);
        if let Request::QueryBatch { queries } = request {
            buffers::recycle_queries(queries);
        }
        let reply = wire.exchange(&self.scratch)?;
        self.exchanges += 1;
        match self
            .codec
            .decode_response(reply)
            .map_err(|e| ClientError::BadReply(e.to_string()))?
        {
            Response::ValueBatch { values } => {
                if values.len() != chunk.len() {
                    return Err(ClientError::BadReply(format!(
                        "batch of {} answered with {} values",
                        chunk.len(),
                        values.len()
                    )));
                }
                out.extend_from_slice(&values);
                buffers::recycle_values(values);
            }
            Response::Error(_) => {
                self.protocol_errors += 1;
                out.resize(out.len() + chunk.len(), None);
            }
            // NoData or protocol misuse: the whole chunk reads as misses.
            _ => out.resize(out.len() + chunk.len(), None),
        }
        Ok(())
    }

    /// Fetches the cover responsible for `time`, mirroring
    /// [`ModelCacheClient`]'s refresh-and-stale-serve policy.
    fn refresh_cover(&mut self, wire: &mut dyn Wire, time: Timestamp) -> Result<(), ClientError> {
        self.scratch.clear();
        self.codec
            .encode_request_into(&Request::ModelRequest { time }, &mut self.scratch);
        let reply = wire.exchange(&self.scratch)?;
        self.exchanges += 1;
        match self
            .codec
            .decode_response(reply)
            .map_err(|e| ClientError::BadReply(e.to_string()))?
        {
            Response::Cover(wire_cover) => {
                let cover = wire_cover.into_cover(self.pollutant);
                self.server_exhausted = !cover.is_valid_at(time);
                self.cached = Some(cover);
            }
            Response::Error(_) => {
                self.protocol_errors += 1;
                self.server_exhausted = true;
            }
            _ => {
                self.cached = None;
                self.server_exhausted = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BinaryCodec;
    use crate::link::LinkProfile;
    use enviro_data::{LausanneSim, SimConfig, WindowSpec};
    use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};

    fn setup() -> (EnviroServer<BinaryCodec>, LausanneSim) {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 4 * 3_600,
            seed: 13,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(2 * 3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        (
            EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover),
            sim,
        )
    }

    #[test]
    fn baseline_one_exchange_per_tuple() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(50, 60, 1);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let stats = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut link)
            .unwrap();
        assert_eq!(stats.server_exchanges, 50);
        assert_eq!(stats.values.len(), 50);
        assert!(stats.values.iter().all(Option::is_some));
    }

    #[test]
    fn model_cache_fetches_once_within_validity() {
        let (server, sim) = setup();
        // 50 tuples × 60 s = 50 min, well inside one 2 h window.
        let traj = sim.continuous_trajectory(50, 60, 2);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        // At most 2 fetches (trajectory may straddle one window boundary).
        assert!(stats.server_exchanges <= 2, "{}", stats.server_exchanges);
        assert!(client.cached_cover().is_some());
        assert!(stats.values.iter().all(Option::is_some));
    }

    #[test]
    fn model_cache_refreshes_on_expiry() {
        let (server, sim) = setup();
        // 120 tuples × 120 s = 4 h: crosses the 2 h window boundary.
        let traj = sim.continuous_trajectory(120, 120, 3);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        assert!(stats.server_exchanges >= 2, "{}", stats.server_exchanges);
        assert!(stats.server_exchanges < 10);
    }

    #[test]
    fn model_cache_saves_bandwidth_and_time() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(100, 30, 4);

        let mut base_link = SimulatedLink::new(LinkProfile::GPRS);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let mut cache_link = SimulatedLink::new(LinkProfile::GPRS);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&server, &traj, &mut cache_link)
            .unwrap();

        assert!(
            cache.usage.sent_bytes * 10 < base.usage.sent_bytes,
            "sent: cache {} vs base {}",
            cache.usage.sent_bytes,
            base.usage.sent_bytes
        );
        assert!(
            cache.usage.received_bytes < base.usage.received_bytes,
            "received: cache {} vs base {}",
            cache.usage.received_bytes,
            base.usage.received_bytes
        );
        assert!(
            cache.elapsed_secs * 10.0 < base.elapsed_secs,
            "time: cache {} vs base {}",
            cache.elapsed_secs,
            base.elapsed_secs
        );
    }

    #[test]
    fn both_clients_agree_on_values() {
        // Both techniques evaluate the same model cover; answers must match.
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(40, 60, 5);
        let mut l1 = SimulatedLink::new(LinkProfile::IDEAL);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut l1)
            .unwrap();
        let mut l2 = SimulatedLink::new(LinkProfile::IDEAL);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&server, &traj, &mut l2)
            .unwrap();
        for (i, (a, b)) in base.values.iter().zip(&cache.values).enumerate() {
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() < 1e-9, "tuple {i}: {x} vs {y}")
                }
                (None, None) => {}
                other => panic!("tuple {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_platform_yields_no_values() {
        let platform = EnviroMeter::new(
            enviro_data::Dataset::new(enviro_data::Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            500.0,
        );
        let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
        let traj = vec![QueryTuple::new(
            enviro_data::Timestamp::ZERO,
            enviro_geo::Point::origin(),
        )];
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        assert_eq!(stats.values, vec![None]);
    }

    fn pollutant_of(server: &EnviroServer<BinaryCodec>) -> Pollutant {
        server.platform().engine().dataset().pollutant()
    }

    fn assert_values_match(a: &[Option<f64>], b: &[Option<f64>]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "tuple {i}: {x} vs {y}")
                }
                (None, None) => {}
                other => panic!("tuple {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn batched_client_matches_baseline_over_loopback() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(75, 60, 6);
        let mut base_link = SimulatedLink::new(LinkProfile::IDEAL);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_batch(16);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();

        assert_values_match(&base.values, &values);
        // 75 tuples at batch 16 → ceil(75/16) = 5 exchanges, not 75.
        assert_eq!(client.exchanges(), 5);
        assert_eq!(client.protocol_errors(), 0);
    }

    #[test]
    fn batched_client_matches_baseline_over_concurrent_session() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(60, 60, 7);
        let mut base_link = SimulatedLink::new(LinkProfile::IDEAL);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let transport = crate::concurrent::ConcurrentTransport::spawn(server, 2).unwrap();
        let mut session = transport.session();
        let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(25);
        let mut values = Vec::new();
        client
            .query_batch(&mut session, &traj, &mut values)
            .unwrap();
        assert_values_match(&base.values, &values);
    }

    #[test]
    fn model_cache_mode_matches_model_cache_client() {
        let (server, sim) = setup();
        // Crosses the 2 h window boundary so both clients must refresh.
        let traj = sim.continuous_trajectory(120, 120, 8);

        let mut cache_link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut reference = ModelCacheClient::new(BinaryCodec);
        let expected = reference.run(&server, &traj, &mut cache_link).unwrap();

        let mut client =
            EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_model_cache(true);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();

        assert_values_match(&expected.values, &values);
        assert_eq!(client.exchanges(), expected.server_exchanges);
        assert!(client.cached_cover().is_some());
    }

    #[test]
    fn batching_reduces_bytes_per_query() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(128, 60, 9);

        let mut base_link = SimulatedLink::new(LinkProfile::IDEAL);
        BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let mut client = EnviroClient::new(BinaryCodec, pollutant_of(&server)).with_batch(64);
        let mut batch_link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut batch_link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();

        let base_bytes = base_link.usage().sent_bytes + base_link.usage().received_bytes;
        let batch_bytes = batch_link.usage().sent_bytes + batch_link.usage().received_bytes;
        assert!(
            batch_bytes < base_bytes,
            "batch {batch_bytes} vs baseline {base_bytes} bytes"
        );
    }

    #[test]
    fn batched_client_survives_empty_platform() {
        let platform = EnviroMeter::new(
            enviro_data::Dataset::new(enviro_data::Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            500.0,
        );
        let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
        let traj =
            vec![QueryTuple::new(enviro_data::Timestamp::ZERO, enviro_geo::Point::origin()); 5];
        let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(2);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();
        assert_eq!(values, vec![None; 5]);
        assert_eq!(client.protocol_errors(), 0);
    }
}
