//! The two mobile clients of the bandwidth evaluation (§2.3, Figure 7b).

use crate::codec::WireCodec;
use crate::link::{LinkUsage, SimulatedLink};
use crate::protocol::{Request, Response};
use crate::server::EnviroServer;
use enviro_data::QueryTuple;
use enviro_meter::ModelCover;

/// The outcome of running one continuous query session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Interpolated value per query tuple (in trajectory order).
    pub values: Vec<Option<f64>>,
    /// Link usage totals (bytes include protocol overhead).
    pub usage: LinkUsage,
    /// Total virtual time to complete the continuous query, in seconds.
    pub elapsed_secs: f64,
    /// Number of server round-trips performed.
    pub server_exchanges: usize,
    /// Number of [`Response::Error`] replies received. The session keeps
    /// going (the affected tuples read as misses); a non-zero count flags
    /// a protocol-level problem worth investigating.
    pub protocol_errors: usize,
}

/// An error that ends a client session.
///
/// Note what is *not* here: a server-side [`Response::Error`] reply does
/// not end the session — it is counted in
/// [`SessionStats::protocol_errors`] and the session continues, because a
/// mobile client must survive a flaky server. Only a reply the client
/// cannot even decode is fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server's reply bytes failed to decode.
    BadReply(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BadReply(m) => write!(f, "undecodable server reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The baseline technique: one server round-trip per query tuple — "simply
/// responds to each query tuple with the interpolated sensor value ŝ_l,
/// without caching the models".
#[derive(Debug)]
pub struct BaselineClient<C: WireCodec> {
    codec: C,
}

impl<C: WireCodec> BaselineClient<C> {
    /// Creates the client with its codec (must match the server's).
    pub fn new(codec: C) -> Self {
        Self { codec }
    }

    /// Runs a continuous query against `server` over `link`.
    pub fn run(
        &self,
        server: &EnviroServer<C>,
        trajectory: &[QueryTuple],
        link: &mut SimulatedLink,
    ) -> Result<SessionStats, ClientError> {
        let start = link.clock_secs();
        let mut values = Vec::with_capacity(trajectory.len());
        let mut exchanges = 0usize;
        let mut protocol_errors = 0usize;
        for q in trajectory {
            let req = self.codec.encode_request(&Request::Query {
                time: q.time,
                pos: q.pos,
            });
            let resp_bytes = server.handle_bytes(&req);
            link.exchange(req.len(), resp_bytes.len());
            exchanges += 1;
            let value = match self
                .codec
                .decode_response(&resp_bytes)
                .map_err(|e| ClientError::BadReply(e.to_string()))?
            {
                Response::Value { value } => Some(value),
                Response::NoData => None,
                Response::Error(_) => {
                    protocol_errors += 1;
                    None
                }
                Response::Cover(_) => None, // protocol misuse; treat as miss
            };
            values.push(value);
        }
        Ok(SessionStats {
            values,
            usage: link.usage(),
            elapsed_secs: link.clock_secs() - start,
            server_exchanges: exchanges,
            protocol_errors,
        })
    }
}

/// The model-cache technique: download `(t_n, µ, M)` once, answer locally
/// while `t_l ≤ t_n`, refresh only on expiry.
///
/// One production refinement over the paper's sketch: when a refresh
/// returns a cover that is *already expired* for the requested time, the
/// server simply has nothing newer (sensing gap, end of deployment). The
/// client then serves from the stale cover without hammering the server on
/// every subsequent tuple, and resumes refreshing once a fetch yields a
/// live horizon again.
#[derive(Debug)]
pub struct ModelCacheClient<C: WireCodec> {
    codec: C,
    cached: Option<ModelCover>,
    /// Set when the last refresh proved the server has no fresher cover.
    server_exhausted: bool,
}

impl<C: WireCodec> ModelCacheClient<C> {
    /// Creates the client with an empty cache.
    pub fn new(codec: C) -> Self {
        Self {
            codec,
            cached: None,
            server_exhausted: false,
        }
    }

    /// The currently cached cover, if any.
    pub fn cached_cover(&self) -> Option<&ModelCover> {
        self.cached.as_ref()
    }

    /// Runs a continuous query against `server` over `link`.
    pub fn run(
        &mut self,
        server: &EnviroServer<C>,
        trajectory: &[QueryTuple],
        link: &mut SimulatedLink,
    ) -> Result<SessionStats, ClientError> {
        let start = link.clock_secs();
        let pollutant = server.platform().engine().dataset().pollutant();
        let mut values = Vec::with_capacity(trajectory.len());
        let mut exchanges = 0usize;
        let mut protocol_errors = 0usize;
        for q in trajectory {
            // The §2.3 check: is the cached cover still valid at t_l?
            let valid = self.cached.as_ref().is_some_and(|c| c.is_valid_at(q.time));
            if !valid && !self.server_exhausted {
                let req = self
                    .codec
                    .encode_request(&Request::ModelRequest { time: q.time });
                let resp_bytes = server.handle_bytes(&req);
                link.exchange(req.len(), resp_bytes.len());
                exchanges += 1;
                match self
                    .codec
                    .decode_response(&resp_bytes)
                    .map_err(|e| ClientError::BadReply(e.to_string()))?
                {
                    Response::Cover(wire) => {
                        let cover = wire.into_cover(pollutant);
                        // A cover already expired for t_l means the server
                        // has nothing fresher: serve stale, stop refreshing.
                        self.server_exhausted = !cover.is_valid_at(q.time);
                        self.cached = Some(cover);
                    }
                    Response::Error(_) => {
                        // Counted, but the cache (possibly stale) is kept:
                        // an error reply says nothing about our cover.
                        protocol_errors += 1;
                        self.server_exhausted = true;
                    }
                    _ => {
                        self.cached = None;
                        self.server_exhausted = true;
                    }
                }
            }
            values.push(
                self.cached
                    .as_ref()
                    .and_then(|c| c.interpolate(q.time, &q.pos)),
            );
        }
        Ok(SessionStats {
            values,
            usage: link.usage(),
            elapsed_secs: link.clock_secs() - start,
            server_exchanges: exchanges,
            protocol_errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BinaryCodec;
    use crate::link::LinkProfile;
    use enviro_data::{LausanneSim, SimConfig, WindowSpec};
    use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};

    fn setup() -> (EnviroServer<BinaryCodec>, LausanneSim) {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 4 * 3_600,
            seed: 13,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(2 * 3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        (
            EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover),
            sim,
        )
    }

    #[test]
    fn baseline_one_exchange_per_tuple() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(50, 60, 1);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let stats = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut link)
            .unwrap();
        assert_eq!(stats.server_exchanges, 50);
        assert_eq!(stats.values.len(), 50);
        assert!(stats.values.iter().all(Option::is_some));
    }

    #[test]
    fn model_cache_fetches_once_within_validity() {
        let (server, sim) = setup();
        // 50 tuples × 60 s = 50 min, well inside one 2 h window.
        let traj = sim.continuous_trajectory(50, 60, 2);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        // At most 2 fetches (trajectory may straddle one window boundary).
        assert!(stats.server_exchanges <= 2, "{}", stats.server_exchanges);
        assert!(client.cached_cover().is_some());
        assert!(stats.values.iter().all(Option::is_some));
    }

    #[test]
    fn model_cache_refreshes_on_expiry() {
        let (server, sim) = setup();
        // 120 tuples × 120 s = 4 h: crosses the 2 h window boundary.
        let traj = sim.continuous_trajectory(120, 120, 3);
        let mut link = SimulatedLink::new(LinkProfile::GPRS);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        assert!(stats.server_exchanges >= 2, "{}", stats.server_exchanges);
        assert!(stats.server_exchanges < 10);
    }

    #[test]
    fn model_cache_saves_bandwidth_and_time() {
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(100, 30, 4);

        let mut base_link = SimulatedLink::new(LinkProfile::GPRS);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut base_link)
            .unwrap();

        let mut cache_link = SimulatedLink::new(LinkProfile::GPRS);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&server, &traj, &mut cache_link)
            .unwrap();

        assert!(
            cache.usage.sent_bytes * 10 < base.usage.sent_bytes,
            "sent: cache {} vs base {}",
            cache.usage.sent_bytes,
            base.usage.sent_bytes
        );
        assert!(
            cache.usage.received_bytes < base.usage.received_bytes,
            "received: cache {} vs base {}",
            cache.usage.received_bytes,
            base.usage.received_bytes
        );
        assert!(
            cache.elapsed_secs * 10.0 < base.elapsed_secs,
            "time: cache {} vs base {}",
            cache.elapsed_secs,
            base.elapsed_secs
        );
    }

    #[test]
    fn both_clients_agree_on_values() {
        // Both techniques evaluate the same model cover; answers must match.
        let (server, sim) = setup();
        let traj = sim.continuous_trajectory(40, 60, 5);
        let mut l1 = SimulatedLink::new(LinkProfile::IDEAL);
        let base = BaselineClient::new(BinaryCodec)
            .run(&server, &traj, &mut l1)
            .unwrap();
        let mut l2 = SimulatedLink::new(LinkProfile::IDEAL);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&server, &traj, &mut l2)
            .unwrap();
        for (i, (a, b)) in base.values.iter().zip(&cache.values).enumerate() {
            match (a, b) {
                (Some(x), Some(y)) => {
                    assert!((x - y).abs() < 1e-9, "tuple {i}: {x} vs {y}")
                }
                (None, None) => {}
                other => panic!("tuple {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_platform_yields_no_values() {
        let platform = EnviroMeter::new(
            enviro_data::Dataset::new(enviro_data::Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            500.0,
        );
        let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
        let traj = vec![QueryTuple::new(
            enviro_data::Timestamp::ZERO,
            enviro_geo::Point::origin(),
        )];
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut client = ModelCacheClient::new(BinaryCodec);
        let stats = client.run(&server, &traj, &mut link).unwrap();
        assert_eq!(stats.values, vec![None]);
    }
}
