//! Wire codecs with byte-exact accounting.
//!
//! Figure 7(b) counts the bytes a phone transmits and receives, so the wire
//! format is explicit rather than delegated to a serialization framework.
//! Two codecs implement the same [`WireCodec`] trait:
//!
//! * [`BinaryCodec`] — the production format: little-endian fixed layouts,
//!   one tag byte per message, varint-free (message sizes are dominated by
//!   `f64` payloads; length prefixes are `u32`).
//! * [`TextCodec`] — a verbose human-readable format standing in for the
//!   JSON-over-HTTP encodings typical of 2013 mobile backends; the
//!   `abl-codec` ablation quantifies what the binary layout saves.

use crate::buffers;
use crate::protocol::{
    ErrorCode, ProtocolError, Request, Response, WireCover, WireModel, WireRegion, BATCH_VERSION,
    BATCH_VERSION_V1, BATCH_VERSION_V2, MAX_BATCH,
};
use bytes::{Buf, BufMut};
use enviro_data::{QueryTuple, RawTuple, Timestamp};
use enviro_geo::Point;
use enviro_meter::LinearModel;
use std::io::Write;

/// Errors produced while decoding a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// An unknown message/model tag was encountered.
    BadTag(u8),
    /// The payload failed validation (e.g. non-finite floats, bad text).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("message truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            CodecError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bidirectional message codec.
///
/// The `_into` methods are the primitive operations: they append to a
/// caller-owned buffer, so the serving hot path can reuse one scratch
/// buffer per thread instead of allocating per message. The by-value
/// `encode_request`/`encode_response` are allocating conveniences on top.
pub trait WireCodec {
    /// Codec name for reports.
    fn name(&self) -> &'static str;

    /// Encodes a request, appending the bytes to `out`.
    fn encode_request_into(&self, req: &Request, out: &mut Vec<u8>);

    /// Decodes a request.
    fn decode_request(&self, bytes: &[u8]) -> Result<Request, CodecError>;

    /// Encodes a response, appending the bytes to `out`.
    fn encode_response_into(&self, resp: &Response, out: &mut Vec<u8>);

    /// Decodes a response.
    fn decode_response(&self, bytes: &[u8]) -> Result<Response, CodecError>;

    /// Encodes a request into a fresh buffer.
    fn encode_request(&self, req: &Request) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        self.encode_request_into(req, &mut out);
        out
    }

    /// Encodes a response into a fresh buffer.
    fn encode_response(&self, resp: &Response) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_response_into(resp, &mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// The compact binary codec (production format).
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

const TAG_QUERY: u8 = 0x01;
const TAG_MODEL_REQUEST: u8 = 0x02;
const TAG_QUERY_BATCH: u8 = 0x03;
const TAG_INGEST: u8 = 0x04;
const TAG_VALUE: u8 = 0x81;
const TAG_NO_DATA: u8 = 0x82;
const TAG_COVER: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;
const TAG_VALUE_BATCH: u8 = 0x85;
const TAG_BUSY: u8 = 0x86;
const TAG_INGEST_ACK: u8 = 0x87;
const MODEL_MEAN: u8 = 0x01;
const MODEL_LINEAR: u8 = 0x02;
/// Flag byte of a batch value slot.
const VALUE_MISS: u8 = 0x00;
const VALUE_PRESENT: u8 = 0x01;

/// Validates the count prefix of a batch frame.
fn check_batch_count(count: usize) -> Result<(), CodecError> {
    if count > MAX_BATCH {
        return Err(CodecError::Malformed(format!(
            "batch of {count} tuples exceeds the {MAX_BATCH} cap"
        )));
    }
    Ok(())
}

/// The error every decoder raises for a batch version it does not speak.
/// Checked *before* the CRC so a peer speaking a future layout gets a
/// version diagnostic, not a checksum mismatch.
fn bad_batch_version(version: u8) -> CodecError {
    CodecError::Malformed(format!("unsupported batch version {version}"))
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), the v2 batch-frame integrity check
// ---------------------------------------------------------------------------

/// CRC-32 lookup table (IEEE 802.3 reflected polynomial), built at compile
/// time — the same checksum Ethernet and zip use, implemented locally
/// because the workspace vendors no hashing crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32, used by the text codec to hash line by line.
struct Crc32 {
    state: u32,
}

impl Crc32 {
    fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC32_TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Builds the CRC-mismatch error shared by both codecs.
fn crc_mismatch(declared: u32, computed: u32) -> CodecError {
    CodecError::Malformed(format!(
        "batch CRC mismatch: frame says {declared:#010x}, computed {computed:#010x}"
    ))
}

/// Verifies the trailing CRC-32 of a v2/v3 binary batch frame.
///
/// `frame` is the whole message; `rest` is the still-unparsed suffix (past
/// tag and version). Returns `rest` with the 4-byte trailer stripped so the
/// caller's `ensure_empty` sees a clean end-of-frame.
fn split_crc_trailer<'a>(frame: &[u8], rest: &'a [u8]) -> Result<&'a [u8], CodecError> {
    if rest.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let (body, trailer) = rest.split_at(rest.len() - 4);
    let declared = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(&frame[..frame.len() - 4]);
    if declared != computed {
        return Err(crc_mismatch(declared, computed));
    }
    Ok(body)
}

impl WireCodec for BinaryCodec {
    fn name(&self) -> &'static str {
        "binary"
    }

    fn encode_request_into(&self, req: &Request, out: &mut Vec<u8>) {
        match req {
            Request::Query { time, pos } => {
                out.put_u8(TAG_QUERY);
                out.put_i64_le(time.as_secs());
                out.put_f64_le(pos.x);
                out.put_f64_le(pos.y);
            }
            Request::ModelRequest { time } => {
                out.put_u8(TAG_MODEL_REQUEST);
                out.put_i64_le(time.as_secs());
            }
            Request::QueryBatch { seq, queries } => {
                let start = out.len();
                out.put_u8(TAG_QUERY_BATCH);
                out.put_u8(BATCH_VERSION);
                out.put_u32_le(*seq);
                out.put_u32_le(queries.len() as u32);
                for q in queries {
                    out.put_i64_le(q.time.as_secs());
                    out.put_f64_le(q.pos.x);
                    out.put_f64_le(q.pos.y);
                }
                let crc = crc32(&out[start..]);
                out.put_u32_le(crc);
            }
            Request::IngestBatch {
                source,
                seq,
                tuples,
            } => {
                let start = out.len();
                out.put_u8(TAG_INGEST);
                out.put_u8(BATCH_VERSION);
                out.put_u64_le(*source);
                out.put_u32_le(*seq);
                out.put_u32_le(tuples.len() as u32);
                for t in tuples {
                    out.put_i64_le(t.time.as_secs());
                    out.put_f64_le(t.pos.x);
                    out.put_f64_le(t.pos.y);
                    out.put_f64_le(t.value);
                }
                let crc = crc32(&out[start..]);
                out.put_u32_le(crc);
            }
        }
    }

    fn decode_request(&self, mut bytes: &[u8]) -> Result<Request, CodecError> {
        let frame = bytes;
        let tag = take_u8(&mut bytes)?;
        match tag {
            TAG_QUERY => {
                let time = Timestamp::from_secs(take_i64(&mut bytes)?);
                let x = take_f64(&mut bytes)?;
                let y = take_f64(&mut bytes)?;
                ensure_empty(bytes)?;
                Ok(Request::Query {
                    time,
                    pos: Point::new(x, y),
                })
            }
            TAG_MODEL_REQUEST => {
                let time = Timestamp::from_secs(take_i64(&mut bytes)?);
                ensure_empty(bytes)?;
                Ok(Request::ModelRequest { time })
            }
            TAG_QUERY_BATCH => {
                let version = take_u8(&mut bytes)?;
                let seq = match version {
                    BATCH_VERSION_V1 => 0,
                    BATCH_VERSION_V2 | BATCH_VERSION => {
                        bytes = split_crc_trailer(frame, bytes)?;
                        take_u32(&mut bytes)?
                    }
                    other => return Err(bad_batch_version(other)),
                };
                let n = take_u32(&mut bytes)? as usize;
                check_batch_count(n)?;
                // The cheap structural check before touching the pool: each
                // tuple is exactly 24 bytes.
                if bytes.remaining() < n * 24 {
                    return Err(CodecError::Truncated);
                }
                let mut queries = buffers::take_queries();
                queries.reserve(n);
                for _ in 0..n {
                    let time = Timestamp::from_secs(take_i64(&mut bytes)?);
                    let x = take_f64(&mut bytes)?;
                    let y = take_f64(&mut bytes)?;
                    queries.push(QueryTuple::new(time, Point::new(x, y)));
                }
                ensure_empty(bytes)?;
                Ok(Request::QueryBatch { seq, queries })
            }
            TAG_INGEST => {
                // New in v3; no older layout to accept.
                let version = take_u8(&mut bytes)?;
                if version != BATCH_VERSION {
                    return Err(bad_batch_version(version));
                }
                bytes = split_crc_trailer(frame, bytes)?;
                let source = take_u64(&mut bytes)?;
                let seq = take_u32(&mut bytes)?;
                let n = take_u32(&mut bytes)? as usize;
                check_batch_count(n)?;
                // Each raw tuple is exactly 32 bytes; check before
                // allocating.
                if bytes.remaining() < n * 32 {
                    return Err(CodecError::Truncated);
                }
                let mut tuples = Vec::with_capacity(n);
                for _ in 0..n {
                    let time = Timestamp::from_secs(take_i64(&mut bytes)?);
                    let x = take_f64(&mut bytes)?;
                    let y = take_f64(&mut bytes)?;
                    let s = take_f64(&mut bytes)?;
                    let t = RawTuple::new(time, Point::new(x, y), s);
                    if !t.is_finite() {
                        return Err(CodecError::Malformed("non-finite ingest tuple".into()));
                    }
                    tuples.push(t);
                }
                ensure_empty(bytes)?;
                Ok(Request::IngestBatch {
                    source,
                    seq,
                    tuples,
                })
            }
            other => Err(CodecError::BadTag(other)),
        }
    }

    fn encode_response_into(&self, resp: &Response, out: &mut Vec<u8>) {
        match resp {
            Response::Value { value } => {
                out.put_u8(TAG_VALUE);
                out.put_f64_le(*value);
            }
            Response::NoData => out.put_u8(TAG_NO_DATA),
            Response::ValueBatch {
                seq,
                generation,
                values,
            } => {
                let start = out.len();
                out.put_u8(TAG_VALUE_BATCH);
                out.put_u8(BATCH_VERSION);
                out.put_u32_le(*seq);
                out.put_u64_le(*generation);
                out.put_u32_le(values.len() as u32);
                for v in values {
                    match v {
                        Some(value) => {
                            out.put_u8(VALUE_PRESENT);
                            out.put_f64_le(*value);
                        }
                        None => out.put_u8(VALUE_MISS),
                    }
                }
                let crc = crc32(&out[start..]);
                out.put_u32_le(crc);
            }
            Response::Busy { retry_after_ms } => {
                out.put_u8(TAG_BUSY);
                out.put_u32_le(*retry_after_ms);
            }
            Response::IngestAck { seq, durable_upto } => {
                let start = out.len();
                out.put_u8(TAG_INGEST_ACK);
                out.put_u8(BATCH_VERSION);
                out.put_u32_le(*seq);
                out.put_u64_le(*durable_upto);
                let crc = crc32(&out[start..]);
                out.put_u32_le(crc);
            }
            Response::Cover(cover) => {
                out.put_u8(TAG_COVER);
                out.put_i64_le(cover.valid_until.as_secs());
                out.put_u32_le(cover.regions.len() as u32);
                for r in &cover.regions {
                    out.put_f64_le(r.centroid.x);
                    out.put_f64_le(r.centroid.y);
                    match &r.model {
                        WireModel::Mean(v) => {
                            out.put_u8(MODEL_MEAN);
                            out.put_f64_le(*v);
                        }
                        WireModel::Linear(coeffs) => {
                            out.put_u8(MODEL_LINEAR);
                            for c in coeffs {
                                out.put_f64_le(*c);
                            }
                        }
                    }
                }
            }
            Response::Error(err) => {
                out.put_u8(TAG_ERROR);
                out.put_u8(err.code.as_u8());
                let msg = err.wire_message().as_bytes();
                out.put_u32_le(msg.len() as u32);
                out.extend_from_slice(msg);
            }
        }
    }

    fn decode_response(&self, mut bytes: &[u8]) -> Result<Response, CodecError> {
        let frame = bytes;
        let tag = take_u8(&mut bytes)?;
        match tag {
            TAG_VALUE => {
                let value = take_f64(&mut bytes)?;
                ensure_empty(bytes)?;
                Ok(Response::Value { value })
            }
            TAG_NO_DATA => {
                ensure_empty(bytes)?;
                Ok(Response::NoData)
            }
            TAG_VALUE_BATCH => {
                let version = take_u8(&mut bytes)?;
                let (seq, generation) = match version {
                    BATCH_VERSION_V1 => (0, 0),
                    BATCH_VERSION_V2 => {
                        bytes = split_crc_trailer(frame, bytes)?;
                        (take_u32(&mut bytes)?, 0)
                    }
                    BATCH_VERSION => {
                        bytes = split_crc_trailer(frame, bytes)?;
                        let seq = take_u32(&mut bytes)?;
                        let generation = take_u64(&mut bytes)?;
                        (seq, generation)
                    }
                    other => return Err(bad_batch_version(other)),
                };
                let n = take_u32(&mut bytes)? as usize;
                check_batch_count(n)?;
                let mut values = buffers::take_values();
                values.reserve(n);
                for _ in 0..n {
                    match take_u8(&mut bytes)? {
                        VALUE_MISS => values.push(None),
                        VALUE_PRESENT => values.push(Some(take_f64(&mut bytes)?)),
                        other => return Err(CodecError::BadTag(other)),
                    }
                }
                ensure_empty(bytes)?;
                Ok(Response::ValueBatch {
                    seq,
                    generation,
                    values,
                })
            }
            TAG_BUSY => {
                let retry_after_ms = take_u32(&mut bytes)?;
                ensure_empty(bytes)?;
                Ok(Response::Busy { retry_after_ms })
            }
            TAG_INGEST_ACK => {
                let version = take_u8(&mut bytes)?;
                if version != BATCH_VERSION {
                    return Err(bad_batch_version(version));
                }
                bytes = split_crc_trailer(frame, bytes)?;
                let seq = take_u32(&mut bytes)?;
                let durable_upto = take_u64(&mut bytes)?;
                ensure_empty(bytes)?;
                Ok(Response::IngestAck { seq, durable_upto })
            }
            TAG_COVER => {
                let valid_until = Timestamp::from_secs(take_i64(&mut bytes)?);
                let n = take_u32(&mut bytes)? as usize;
                // Guard against absurd lengths before allocating.
                if n > 1_000_000 {
                    return Err(CodecError::Malformed(format!("{n} regions")));
                }
                let mut regions = Vec::with_capacity(n);
                for _ in 0..n {
                    let cx = take_f64(&mut bytes)?;
                    let cy = take_f64(&mut bytes)?;
                    let model = match take_u8(&mut bytes)? {
                        MODEL_MEAN => WireModel::Mean(take_f64(&mut bytes)?),
                        MODEL_LINEAR => {
                            let mut coeffs = [0.0; LinearModel::COEFFICIENT_COUNT];
                            for c in &mut coeffs {
                                *c = take_f64(&mut bytes)?;
                            }
                            WireModel::Linear(coeffs)
                        }
                        other => return Err(CodecError::BadTag(other)),
                    };
                    regions.push(WireRegion {
                        centroid: Point::new(cx, cy),
                        model,
                    });
                }
                ensure_empty(bytes)?;
                Ok(Response::Cover(WireCover {
                    valid_until,
                    regions,
                }))
            }
            TAG_ERROR => {
                let code = ErrorCode::from_u8(take_u8(&mut bytes)?)
                    .ok_or_else(|| CodecError::Malformed("bad error code".into()))?;
                let len = take_u32(&mut bytes)? as usize;
                if len > ProtocolError::MAX_MESSAGE_BYTES {
                    return Err(CodecError::Malformed(format!(
                        "error message of {len} bytes"
                    )));
                }
                if bytes.remaining() < len {
                    return Err(CodecError::Truncated);
                }
                let message = std::str::from_utf8(&bytes[..len])
                    .map_err(|e| CodecError::Malformed(e.to_string()))?
                    .to_string();
                bytes.advance(len);
                ensure_empty(bytes)?;
                Ok(Response::Error(ProtocolError { code, message }))
            }
            other => Err(CodecError::BadTag(other)),
        }
    }
}

fn take_u8(bytes: &mut &[u8]) -> Result<u8, CodecError> {
    if bytes.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(bytes.get_u8())
}

fn take_u32(bytes: &mut &[u8]) -> Result<u32, CodecError> {
    if bytes.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(bytes.get_u32_le())
}

fn take_i64(bytes: &mut &[u8]) -> Result<i64, CodecError> {
    if bytes.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(bytes.get_i64_le())
}

fn take_u64(bytes: &mut &[u8]) -> Result<u64, CodecError> {
    if bytes.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(bytes.get_u64_le())
}

fn take_f64(bytes: &mut &[u8]) -> Result<f64, CodecError> {
    if bytes.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(bytes.get_f64_le())
}

fn ensure_empty(bytes: &[u8]) -> Result<(), CodecError> {
    if bytes.is_empty() {
        Ok(())
    } else {
        Err(CodecError::Malformed(format!(
            "{} trailing bytes",
            bytes.len()
        )))
    }
}

// ---------------------------------------------------------------------------
// Text codec (ablation)
// ---------------------------------------------------------------------------

/// A verbose line-oriented text codec, standing in for JSON-over-HTTP.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextCodec;

impl WireCodec for TextCodec {
    fn name(&self) -> &'static str {
        "text"
    }

    fn encode_request_into(&self, req: &Request, out: &mut Vec<u8>) {
        // `write!` into a `Vec<u8>` cannot fail; the results are discarded
        // rather than unwrapped to honor the workspace panic policy.
        match req {
            Request::Query { time, pos } => {
                let _ = writeln!(
                    out,
                    "REQUEST query time={} x={:.6} y={:.6}",
                    time.as_secs(),
                    pos.x,
                    pos.y
                );
            }
            Request::ModelRequest { time } => {
                let _ = writeln!(out, "REQUEST model-request time={}", time.as_secs());
            }
            Request::QueryBatch { seq, queries } => {
                let start = out.len();
                let _ = writeln!(
                    out,
                    "REQUEST query-batch v={BATCH_VERSION} seq={seq} n={}",
                    queries.len()
                );
                for q in queries {
                    let _ = writeln!(
                        out,
                        "q time={} x={:.6} y={:.6}",
                        q.time.as_secs(),
                        q.pos.x,
                        q.pos.y
                    );
                }
                let crc = crc32(&out[start..]);
                let _ = writeln!(out, "crc={crc:08X}");
            }
            Request::IngestBatch {
                source,
                seq,
                tuples,
            } => {
                let start = out.len();
                let _ = writeln!(
                    out,
                    "REQUEST ingest-batch v={BATCH_VERSION} source={source} seq={seq} n={}",
                    tuples.len()
                );
                for t in tuples {
                    let _ = writeln!(
                        out,
                        "b time={} x={:.6} y={:.6} s={:.9}",
                        t.time.as_secs(),
                        t.pos.x,
                        t.pos.y,
                        t.value
                    );
                }
                let crc = crc32(&out[start..]);
                let _ = writeln!(out, "crc={crc:08X}");
            }
        }
    }

    fn decode_request(&self, bytes: &[u8]) -> Result<Request, CodecError> {
        let text = std::str::from_utf8(bytes).map_err(|e| CodecError::Malformed(e.to_string()))?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| CodecError::Malformed("empty request".into()))?;
        let mut parts = header.split_whitespace();
        expect_token(&mut parts, "REQUEST")?;
        match parts.next() {
            Some("query") => {
                let time = Timestamp::from_secs(kv_i64(&mut parts, "time")?);
                let x = kv_f64(&mut parts, "x")?;
                let y = kv_f64(&mut parts, "y")?;
                Ok(Request::Query {
                    time,
                    pos: Point::new(x, y),
                })
            }
            Some("model-request") => {
                let time = Timestamp::from_secs(kv_i64(&mut parts, "time")?);
                Ok(Request::ModelRequest { time })
            }
            Some("query-batch") => {
                let version = kv_i64(&mut parts, "v")?;
                if !(0..=u8::MAX as i64).contains(&version) {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                let seq = match version as u8 {
                    BATCH_VERSION_V1 => 0,
                    BATCH_VERSION_V2 | BATCH_VERSION => {
                        let seq = kv_i64(&mut parts, "seq")?;
                        if !(0..=u32::MAX as i64).contains(&seq) {
                            return Err(CodecError::Malformed("bad batch header".into()));
                        }
                        seq as u32
                    }
                    other => return Err(bad_batch_version(other)),
                };
                let n = kv_i64(&mut parts, "n")?;
                if n < 0 {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                check_batch_count(n as usize)?;
                // v2+ frames carry a trailing `crc=` line hashing every
                // preceding line (newlines included); v1 frames have none.
                let mut hasher = Crc32::new();
                hasher.update(header.as_bytes());
                hasher.update(b"\n");
                let mut trailer = None;
                let mut queries = buffers::take_queries();
                queries.reserve(n as usize);
                for line in lines {
                    if trailer.is_some() {
                        return Err(CodecError::Malformed("lines after crc trailer".into()));
                    }
                    if let Some(hex) = line.strip_prefix("crc=") {
                        let declared = u32::from_str_radix(hex, 16)
                            .map_err(|_| CodecError::Malformed(format!("bad crc {hex:?}")))?;
                        trailer = Some(declared);
                        continue;
                    }
                    if queries.len() == n as usize {
                        return Err(CodecError::Malformed("extra batch lines".into()));
                    }
                    hasher.update(line.as_bytes());
                    hasher.update(b"\n");
                    let mut p = line.split_whitespace();
                    expect_token(&mut p, "q")?;
                    let time = Timestamp::from_secs(kv_i64(&mut p, "time")?);
                    let x = kv_f64(&mut p, "x")?;
                    let y = kv_f64(&mut p, "y")?;
                    queries.push(QueryTuple::new(time, Point::new(x, y)));
                }
                if version as u8 != BATCH_VERSION_V1 {
                    let declared = trailer
                        .ok_or_else(|| CodecError::Malformed("missing crc trailer".into()))?;
                    let computed = hasher.finish();
                    if declared != computed {
                        return Err(crc_mismatch(declared, computed));
                    }
                } else if trailer.is_some() {
                    return Err(CodecError::Malformed("crc trailer on a v1 frame".into()));
                }
                if queries.len() != n as usize {
                    return Err(CodecError::Malformed(format!(
                        "declared {n} tuples, got {}",
                        queries.len()
                    )));
                }
                Ok(Request::QueryBatch { seq, queries })
            }
            Some("ingest-batch") => {
                let version = kv_i64(&mut parts, "v")?;
                if !(0..=u8::MAX as i64).contains(&version) {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                // Ingest frames are a v3 addition: no older layout exists.
                if version as u8 != BATCH_VERSION {
                    return Err(bad_batch_version(version as u8));
                }
                let source = kv_u64(&mut parts, "source")?;
                let seq = kv_i64(&mut parts, "seq")?;
                if !(0..=u32::MAX as i64).contains(&seq) {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                let seq = seq as u32;
                let n = kv_i64(&mut parts, "n")?;
                if n < 0 {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                check_batch_count(n as usize)?;
                let mut hasher = Crc32::new();
                hasher.update(header.as_bytes());
                hasher.update(b"\n");
                let mut trailer = None;
                let mut tuples = Vec::with_capacity(n as usize);
                for line in lines {
                    if trailer.is_some() {
                        return Err(CodecError::Malformed("lines after crc trailer".into()));
                    }
                    if let Some(hex) = line.strip_prefix("crc=") {
                        let declared = u32::from_str_radix(hex, 16)
                            .map_err(|_| CodecError::Malformed(format!("bad crc {hex:?}")))?;
                        trailer = Some(declared);
                        continue;
                    }
                    if tuples.len() == n as usize {
                        return Err(CodecError::Malformed("extra batch lines".into()));
                    }
                    hasher.update(line.as_bytes());
                    hasher.update(b"\n");
                    let mut p = line.split_whitespace();
                    expect_token(&mut p, "b")?;
                    let time = Timestamp::from_secs(kv_i64(&mut p, "time")?);
                    let x = kv_f64(&mut p, "x")?;
                    let y = kv_f64(&mut p, "y")?;
                    let s = kv_f64(&mut p, "s")?;
                    let tuple = RawTuple::new(time, Point::new(x, y), s);
                    if !tuple.is_finite() {
                        return Err(CodecError::Malformed("non-finite ingest tuple".into()));
                    }
                    tuples.push(tuple);
                }
                let declared =
                    trailer.ok_or_else(|| CodecError::Malformed("missing crc trailer".into()))?;
                let computed = hasher.finish();
                if declared != computed {
                    return Err(crc_mismatch(declared, computed));
                }
                if tuples.len() != n as usize {
                    return Err(CodecError::Malformed(format!(
                        "declared {n} tuples, got {}",
                        tuples.len()
                    )));
                }
                Ok(Request::IngestBatch {
                    source,
                    seq,
                    tuples,
                })
            }
            other => Err(CodecError::Malformed(format!("bad verb {other:?}"))),
        }
    }

    fn encode_response_into(&self, resp: &Response, out: &mut Vec<u8>) {
        match resp {
            Response::Value { value } => {
                let _ = writeln!(out, "RESPONSE value s={value:.9}");
            }
            Response::NoData => {
                let _ = writeln!(out, "RESPONSE no-data");
            }
            Response::ValueBatch {
                seq,
                generation,
                values,
            } => {
                let start = out.len();
                let _ = writeln!(
                    out,
                    "RESPONSE value-batch v={BATCH_VERSION} seq={seq} gen={generation} n={}",
                    values.len()
                );
                for v in values {
                    match v {
                        Some(value) => {
                            let _ = writeln!(out, "v s={value:.9}");
                        }
                        None => {
                            let _ = writeln!(out, "v s=miss");
                        }
                    }
                }
                let crc = crc32(&out[start..]);
                let _ = writeln!(out, "crc={crc:08X}");
            }
            Response::Busy { retry_after_ms } => {
                let _ = writeln!(out, "RESPONSE busy retry-after-ms={retry_after_ms}");
            }
            Response::IngestAck { seq, durable_upto } => {
                let start = out.len();
                let _ = writeln!(
                    out,
                    "RESPONSE ingest-ack v={BATCH_VERSION} seq={seq} durable={durable_upto}"
                );
                let crc = crc32(&out[start..]);
                let _ = writeln!(out, "crc={crc:08X}");
            }
            Response::Cover(cover) => {
                let _ = writeln!(
                    out,
                    "RESPONSE cover valid-until={} regions={}",
                    cover.valid_until.as_secs(),
                    cover.regions.len()
                );
                for r in &cover.regions {
                    match &r.model {
                        WireModel::Mean(v) => {
                            let _ = writeln!(
                                out,
                                "region cx={:.6} cy={:.6} model=mean coeffs={v:.9}",
                                r.centroid.x, r.centroid.y
                            );
                        }
                        WireModel::Linear(cs) => {
                            let _ = write!(
                                out,
                                "region cx={:.6} cy={:.6} model=linear coeffs=",
                                r.centroid.x, r.centroid.y
                            );
                            for (i, c) in cs.iter().enumerate() {
                                let sep = if i == 0 { "" } else { "," };
                                let _ = write!(out, "{sep}{c:.9}");
                            }
                            let _ = writeln!(out);
                        }
                    }
                }
            }
            Response::Error(err) => {
                let _ = writeln!(
                    out,
                    "RESPONSE error code={} message={}",
                    err.code.name(),
                    escape_message(err.wire_message())
                );
            }
        }
    }

    fn decode_response(&self, bytes: &[u8]) -> Result<Response, CodecError> {
        let text = std::str::from_utf8(bytes).map_err(|e| CodecError::Malformed(e.to_string()))?;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| CodecError::Malformed("empty response".into()))?;
        let mut parts = header.split_whitespace();
        expect_token(&mut parts, "RESPONSE")?;
        match parts.next() {
            Some("value") => {
                let value = kv_f64(&mut parts, "s")?;
                Ok(Response::Value { value })
            }
            Some("no-data") => Ok(Response::NoData),
            Some("value-batch") => {
                let version = kv_i64(&mut parts, "v")?;
                if !(0..=u8::MAX as i64).contains(&version) {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                let (seq, generation) = match version as u8 {
                    BATCH_VERSION_V1 => (0, 0),
                    v @ (BATCH_VERSION_V2 | BATCH_VERSION) => {
                        let seq = kv_i64(&mut parts, "seq")?;
                        if !(0..=u32::MAX as i64).contains(&seq) {
                            return Err(CodecError::Malformed("bad batch header".into()));
                        }
                        let generation = if v == BATCH_VERSION {
                            kv_u64(&mut parts, "gen")?
                        } else {
                            0
                        };
                        (seq as u32, generation)
                    }
                    other => return Err(bad_batch_version(other)),
                };
                let n = kv_i64(&mut parts, "n")?;
                if n < 0 {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                check_batch_count(n as usize)?;
                let mut hasher = Crc32::new();
                hasher.update(header.as_bytes());
                hasher.update(b"\n");
                let mut trailer = None;
                let mut values = buffers::take_values();
                values.reserve(n as usize);
                for line in lines {
                    if trailer.is_some() {
                        return Err(CodecError::Malformed("lines after crc trailer".into()));
                    }
                    if let Some(hex) = line.strip_prefix("crc=") {
                        let declared = u32::from_str_radix(hex, 16)
                            .map_err(|_| CodecError::Malformed(format!("bad crc {hex:?}")))?;
                        trailer = Some(declared);
                        continue;
                    }
                    if values.len() == n as usize {
                        return Err(CodecError::Malformed("extra batch lines".into()));
                    }
                    hasher.update(line.as_bytes());
                    hasher.update(b"\n");
                    let mut p = line.split_whitespace();
                    expect_token(&mut p, "v")?;
                    let s = kv_str(&mut p, "s")?;
                    if s == "miss" {
                        values.push(None);
                    } else {
                        let value = s
                            .parse()
                            .map_err(|_| CodecError::Malformed(format!("bad value {s:?}")))?;
                        values.push(Some(value));
                    }
                }
                if version as u8 != BATCH_VERSION_V1 {
                    let declared = trailer
                        .ok_or_else(|| CodecError::Malformed("missing crc trailer".into()))?;
                    let computed = hasher.finish();
                    if declared != computed {
                        return Err(crc_mismatch(declared, computed));
                    }
                } else if trailer.is_some() {
                    return Err(CodecError::Malformed("crc trailer on a v1 frame".into()));
                }
                if values.len() != n as usize {
                    return Err(CodecError::Malformed(format!(
                        "declared {n} values, got {}",
                        values.len()
                    )));
                }
                Ok(Response::ValueBatch {
                    seq,
                    generation,
                    values,
                })
            }
            Some("busy") => {
                let retry_after_ms = kv_i64(&mut parts, "retry-after-ms")?;
                if !(0..=u32::MAX as i64).contains(&retry_after_ms) {
                    return Err(CodecError::Malformed("bad retry-after-ms".into()));
                }
                Ok(Response::Busy {
                    retry_after_ms: retry_after_ms as u32,
                })
            }
            Some("ingest-ack") => {
                let version = kv_i64(&mut parts, "v")?;
                if !(0..=u8::MAX as i64).contains(&version) {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                if version as u8 != BATCH_VERSION {
                    return Err(bad_batch_version(version as u8));
                }
                let seq = kv_i64(&mut parts, "seq")?;
                if !(0..=u32::MAX as i64).contains(&seq) {
                    return Err(CodecError::Malformed("bad batch header".into()));
                }
                let durable_upto = kv_u64(&mut parts, "durable")?;
                let mut hasher = Crc32::new();
                hasher.update(header.as_bytes());
                hasher.update(b"\n");
                let trailer = lines
                    .next()
                    .and_then(|line| line.strip_prefix("crc="))
                    .ok_or_else(|| CodecError::Malformed("missing crc trailer".into()))?;
                let declared = u32::from_str_radix(trailer, 16)
                    .map_err(|_| CodecError::Malformed(format!("bad crc {trailer:?}")))?;
                let computed = hasher.finish();
                if declared != computed {
                    return Err(crc_mismatch(declared, computed));
                }
                if lines.next().is_some() {
                    return Err(CodecError::Malformed("lines after crc trailer".into()));
                }
                Ok(Response::IngestAck {
                    seq: seq as u32,
                    durable_upto,
                })
            }
            Some("cover") => {
                let valid_until = Timestamp::from_secs(kv_i64(&mut parts, "valid-until")?);
                let n = kv_i64(&mut parts, "regions")? as usize;
                let mut regions = Vec::with_capacity(n.min(4096));
                for line in lines {
                    let mut p = line.split_whitespace();
                    expect_token(&mut p, "region")?;
                    let cx = kv_f64(&mut p, "cx")?;
                    let cy = kv_f64(&mut p, "cy")?;
                    let kind = kv_str(&mut p, "model")?;
                    let coeffs = kv_str(&mut p, "coeffs")?;
                    let model = match kind {
                        "mean" => {
                            WireModel::Mean(coeffs.parse().map_err(|_| {
                                CodecError::Malformed(format!("bad mean {coeffs:?}"))
                            })?)
                        }
                        "linear" => {
                            let vals: Result<Vec<f64>, _> =
                                coeffs.split(',').map(str::parse).collect();
                            let vals = vals
                                .map_err(|_| CodecError::Malformed("bad linear coeffs".into()))?;
                            if vals.len() != LinearModel::COEFFICIENT_COUNT {
                                return Err(CodecError::Malformed(format!(
                                    "expected {} coeffs, got {}",
                                    LinearModel::COEFFICIENT_COUNT,
                                    vals.len()
                                )));
                            }
                            let mut arr = [0.0; LinearModel::COEFFICIENT_COUNT];
                            arr.copy_from_slice(&vals);
                            WireModel::Linear(arr)
                        }
                        other => {
                            return Err(CodecError::Malformed(format!("bad model kind {other:?}")))
                        }
                    };
                    regions.push(WireRegion {
                        centroid: Point::new(cx, cy),
                        model,
                    });
                }
                if regions.len() != n {
                    return Err(CodecError::Malformed(format!(
                        "declared {n} regions, got {}",
                        regions.len()
                    )));
                }
                Ok(Response::Cover(WireCover {
                    valid_until,
                    regions,
                }))
            }
            Some("error") => {
                let code = ErrorCode::from_name(kv_str(&mut parts, "code")?)
                    .ok_or_else(|| CodecError::Malformed("bad error code".into()))?;
                let message = unescape_message(kv_str(&mut parts, "message")?)?;
                if message.len() > ProtocolError::MAX_MESSAGE_BYTES {
                    return Err(CodecError::Malformed(format!(
                        "error message of {} bytes",
                        message.len()
                    )));
                }
                Ok(Response::Error(ProtocolError { code, message }))
            }
            other => Err(CodecError::Malformed(format!("bad verb {other:?}"))),
        }
    }
}

/// Percent-escapes `%` and whitespace so a diagnostic survives the text
/// codec's whitespace-based tokenizer.
fn escape_message(message: &str) -> String {
    let mut out = String::with_capacity(message.len());
    for c in message.chars() {
        match c {
            '%' | ' ' | '\t' | '\n' | '\r' => {
                out.push('%');
                out.push_str(&format!("{:02X}", c as u32));
            }
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_message`]; rejects malformed escapes and non-UTF-8.
fn unescape_message(escaped: &str) -> Result<String, CodecError> {
    let bytes = escaped.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| CodecError::Malformed("bad escape".into()))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|e| CodecError::Malformed(e.to_string()))
}

fn expect_token<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    want: &str,
) -> Result<(), CodecError> {
    match parts.next() {
        Some(t) if t == want => Ok(()),
        other => Err(CodecError::Malformed(format!(
            "expected {want:?}, got {other:?}"
        ))),
    }
}

fn kv_str<'a>(parts: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<&'a str, CodecError> {
    let token = parts
        .next()
        .ok_or_else(|| CodecError::Malformed(format!("missing {key}")))?;
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| CodecError::Malformed(format!("expected {key}=…, got {token:?}")))
}

fn kv_f64<'a>(parts: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<f64, CodecError> {
    kv_str(parts, key)?
        .parse()
        .map_err(|_| CodecError::Malformed(format!("bad float for {key}")))
}

fn kv_i64<'a>(parts: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<i64, CodecError> {
    kv_str(parts, key)?
        .parse()
        .map_err(|_| CodecError::Malformed(format!("bad int for {key}")))
}

fn kv_u64<'a>(parts: &mut impl Iterator<Item = &'a str>, key: &str) -> Result<u64, CodecError> {
    kv_str(parts, key)?
        .parse()
        .map_err(|_| CodecError::Malformed(format!("bad int for {key}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cover() -> WireCover {
        WireCover {
            valid_until: Timestamp::from_secs(7_200),
            regions: vec![
                WireRegion {
                    centroid: Point::new(100.0, -50.0),
                    model: WireModel::Mean(421.5),
                },
                WireRegion {
                    centroid: Point::new(-300.25, 900.125),
                    model: WireModel::Linear([
                        400.0, 1.5, -2.25, 0.125, 10.0, 20.0, 30.0, 1.0, 2.0, 3.0, 350.0, 900.0,
                    ]),
                },
            ],
        }
    }

    fn codecs() -> Vec<Box<dyn WireCodec>> {
        vec![Box::new(BinaryCodec), Box::new(TextCodec)]
    }

    #[test]
    fn request_roundtrip_all_codecs() {
        let reqs = [
            Request::Query {
                time: Timestamp::from_secs(12_345),
                pos: Point::new(1.5, -2.25),
            },
            Request::ModelRequest {
                time: Timestamp::from_secs(99),
            },
        ];
        for codec in codecs() {
            for req in &reqs {
                let bytes = codec.encode_request(req);
                let back = codec.decode_request(&bytes).unwrap();
                assert_eq!(&back, req, "{}", codec.name());
            }
        }
    }

    #[test]
    fn response_roundtrip_all_codecs() {
        let resps = [
            Response::Value { value: 456.789 },
            Response::NoData,
            Response::Cover(sample_cover()),
            Response::Error(ProtocolError::new(
                ErrorCode::BadRequest,
                "unknown tag 0xFF — resync % retry\n(σ=2)",
            )),
        ];
        for codec in codecs() {
            for resp in &resps {
                let bytes = codec.encode_response(resp);
                let back = codec.decode_response(&bytes).unwrap();
                assert_eq!(&back, resp, "{}", codec.name());
            }
        }
    }

    #[test]
    fn binary_query_is_25_bytes() {
        // tag(1) + time(8) + x(8) + y(8): the payload Figure 7(b) charges
        // per baseline query.
        let bytes = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::ZERO,
            pos: Point::origin(),
        });
        assert_eq!(bytes.len(), 25);
    }

    #[test]
    fn binary_value_is_9_bytes() {
        let bytes = BinaryCodec.encode_response(&Response::Value { value: 1.0 });
        assert_eq!(bytes.len(), 9);
    }

    #[test]
    fn binary_cover_size_formula() {
        // tag(1) + t_n(8) + count(4) + per region: centroid(16) + model tag(1)
        // + coeffs (8 or 80).
        let bytes = BinaryCodec.encode_response(&Response::Cover(sample_cover()));
        assert_eq!(
            bytes.len(),
            1 + 8 + 4 + (16 + 1 + 8) + (16 + 1 + 8 * LinearModel::COEFFICIENT_COUNT)
        );
    }

    #[test]
    fn text_codec_is_larger_than_binary() {
        let resp = Response::Cover(sample_cover());
        let bin = BinaryCodec.encode_response(&resp).len();
        let txt = TextCodec.encode_response(&resp).len();
        assert!(txt > bin, "text {txt} <= binary {bin}");
    }

    #[test]
    fn binary_rejects_truncated() {
        let bytes = BinaryCodec.encode_response(&Response::Cover(sample_cover()));
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(
                BinaryCodec.decode_response(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn binary_rejects_bad_tag() {
        assert_eq!(
            BinaryCodec.decode_request(&[0xFF]),
            Err(CodecError::BadTag(0xFF))
        );
    }

    #[test]
    fn binary_rejects_trailing_garbage() {
        let mut bytes = BinaryCodec.encode_response(&Response::NoData);
        bytes.push(0x00);
        assert!(matches!(
            BinaryCodec.decode_response(&bytes),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn text_rejects_malformed() {
        assert!(TextCodec.decode_request(b"HELLO world\n").is_err());
        assert!(TextCodec
            .decode_response(b"RESPONSE cover valid-until=0 regions=2\n")
            .is_err());
        assert!(TextCodec.decode_response(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn error_message_is_bounded_on_the_wire() {
        let long = "x".repeat(10 * ProtocolError::MAX_MESSAGE_BYTES);
        let err = Response::Error(ProtocolError {
            code: ErrorCode::Internal,
            message: long,
        });
        for codec in codecs() {
            let bytes = codec.encode_response(&err);
            assert!(
                bytes.len() < 2 * ProtocolError::MAX_MESSAGE_BYTES,
                "{}: {} bytes",
                codec.name(),
                bytes.len()
            );
            match codec.decode_response(&bytes).unwrap() {
                Response::Error(e) => {
                    assert_eq!(e.message.len(), ProtocolError::MAX_MESSAGE_BYTES);
                }
                other => panic!("{}: {other:?}", codec.name()),
            }
        }
    }

    #[test]
    fn binary_rejects_oversized_error_length() {
        let mut bytes = Vec::new();
        bytes.put_u8(TAG_ERROR);
        bytes.put_u8(1);
        bytes.put_u32_le(u32::MAX);
        assert!(matches!(
            BinaryCodec.decode_response(&bytes),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn binary_rejects_absurd_region_count() {
        let mut bytes = Vec::new();
        bytes.put_u8(0x83);
        bytes.put_i64_le(0);
        bytes.put_u32_le(u32::MAX);
        assert!(BinaryCodec.decode_response(&bytes).is_err());
    }

    fn sample_batch(n: usize) -> Request {
        Request::QueryBatch {
            seq: 7,
            queries: (0..n)
                .map(|i| {
                    QueryTuple::new(
                        Timestamp::from_secs(i as i64 * 60),
                        Point::new(i as f64 * 1.5, -(i as f64) * 0.25),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn batch_roundtrip_all_codecs() {
        let values = Response::ValueBatch {
            seq: 9,
            generation: 41,
            values: vec![Some(421.125), None, Some(-3.5), Some(0.0), None],
        };
        for codec in codecs() {
            for n in [0, 1, 5, 64] {
                let req = sample_batch(n);
                let back = codec.decode_request(&codec.encode_request(&req)).unwrap();
                assert_eq!(back, req, "{} n={n}", codec.name());
            }
            let bytes = codec.encode_response(&values);
            assert_eq!(
                codec.decode_response(&bytes).unwrap(),
                values,
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn busy_roundtrip_all_codecs() {
        let busy = Response::Busy { retry_after_ms: 25 };
        for codec in codecs() {
            let bytes = codec.encode_response(&busy);
            assert_eq!(
                codec.decode_response(&bytes).unwrap(),
                busy,
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn binary_batch_size_formula() {
        // Request layout (unchanged since v2): tag(1) + version(1) + seq(4)
        // + count(4) + 24 per tuple + crc(4).
        let bytes = BinaryCodec.encode_request(&sample_batch(16));
        assert_eq!(bytes.len(), 14 + 16 * 24);
        // Reply (v3): tag(1) + version(1) + seq(4) + generation(8) +
        // count(4) + flag(1) [+ value(8)] + crc(4).
        let resp = Response::ValueBatch {
            seq: 1,
            generation: 0,
            values: vec![Some(1.0), None, Some(2.0)],
        };
        assert_eq!(BinaryCodec.encode_response(&resp).len(), 22 + 3 + 2 * 8);
    }

    #[test]
    fn batched_frames_cost_fewer_wire_bytes_per_query() {
        // The acceptance criterion of the batching tentpole, at codec level.
        // v3's fixed overhead (seq + generation + crc, 36 + 33n total vs 34n
        // single-query) puts the break-even just past batch 36, so the sweep
        // starts at 64.
        let single_req = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::ZERO,
            pos: Point::origin(),
        });
        let single_resp = BinaryCodec.encode_response(&Response::Value { value: 1.0 });
        for n in [64, 256, 1024] {
            let req = BinaryCodec.encode_request(&sample_batch(n));
            let resp = BinaryCodec.encode_response(&Response::ValueBatch {
                seq: 7,
                generation: 1,
                values: vec![Some(1.0); n],
            });
            assert!(
                req.len() + resp.len() < n * (single_req.len() + single_resp.len()),
                "batch {n}: {} + {} vs {} per query",
                req.len(),
                resp.len(),
                single_req.len() + single_resp.len()
            );
        }
    }

    #[test]
    fn batch_rejects_wrong_version() {
        for codec in codecs() {
            let mut bytes = codec.encode_request(&sample_batch(2));
            // Corrupt the version byte (binary: offset 1; text: "v=3").
            match codec.name() {
                "binary" => bytes[1] = BATCH_VERSION + 1,
                _ => {
                    let s = String::from_utf8(bytes).unwrap();
                    bytes = s.replace("v=3", "v=9").into_bytes();
                }
            }
            match codec.decode_request(&bytes) {
                Err(CodecError::Malformed(m)) => {
                    assert!(m.contains("version"), "{}: {m}", codec.name())
                }
                other => panic!("{}: {other:?}", codec.name()),
            }
        }
    }

    #[test]
    fn batch_rejects_corrupted_crc() {
        // Flip one payload bit: the length and structure stay plausible,
        // only the checksum can catch it.
        for codec in codecs() {
            let good = codec.encode_request(&sample_batch(3));
            // A tuple byte well past the header (binary offset 20 is inside
            // tuple 0; for text, flip a digit character mid-frame).
            let mut bad = good.clone();
            let idx = good.len() / 2;
            bad[idx] ^= 0x01;
            let decoded = codec.decode_request(&bad);
            assert!(
                decoded.is_err() || decoded.ok() != Some(sample_batch(3)),
                "{}: corruption must not decode to the original",
                codec.name()
            );
        }
        // And byte-exact CRC coverage on the binary layout: flipping any
        // single payload bit must be rejected, not mis-decoded.
        let good = BinaryCodec.encode_request(&sample_batch(2));
        for idx in 2..good.len() {
            let mut bad = good.clone();
            bad[idx] ^= 0x40;
            assert!(
                BinaryCodec.decode_request(&bad).is_err(),
                "flip at {idx} slipped through"
            );
        }
    }

    #[test]
    fn v1_frames_still_decode_with_seq_zero() {
        // A phone that never upgraded sends CRC-less v1 frames; they must
        // keep decoding (with sequence number 0) after the v2 bump.
        let Request::QueryBatch { queries, .. } = sample_batch(2) else {
            unreachable!()
        };
        let mut bytes = Vec::new();
        bytes.put_u8(0x03);
        bytes.put_u8(BATCH_VERSION_V1);
        bytes.put_u32_le(2);
        for q in &queries {
            bytes.put_i64_le(q.time.as_secs());
            bytes.put_f64_le(q.pos.x);
            bytes.put_f64_le(q.pos.y);
        }
        match BinaryCodec.decode_request(&bytes).unwrap() {
            Request::QueryBatch { seq, queries: q } => {
                assert_eq!(seq, 0);
                assert_eq!(*q, queries[..]);
            }
            other => panic!("{other:?}"),
        }
        // Text v1: header without seq, no crc trailer.
        let text = "REQUEST query-batch v=1 n=1\nq time=60 x=1.500000 y=-0.250000\n";
        match TextCodec.decode_request(text.as_bytes()).unwrap() {
            Request::QueryBatch { seq, queries: q } => {
                assert_eq!(seq, 0);
                assert_eq!(q.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        // Text v1 value batch.
        let text = "RESPONSE value-batch v=1 n=2\nv s=1.500000000\nv s=miss\n";
        match TextCodec.decode_response(text.as_bytes()).unwrap() {
            Response::ValueBatch {
                seq,
                generation,
                values,
            } => {
                assert_eq!(seq, 0);
                assert_eq!(generation, 0);
                assert_eq!(*values, [Some(1.5), None]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn v2_frames_still_decode_with_generation_zero() {
        // A v2 peer sends seq + crc but no generation; both codecs must
        // keep accepting those frames after the v3 bump.
        let Request::QueryBatch { queries, .. } = sample_batch(2) else {
            unreachable!()
        };
        let mut bytes = Vec::new();
        bytes.put_u8(0x03);
        bytes.put_u8(BATCH_VERSION_V2);
        bytes.put_u32_le(7);
        bytes.put_u32_le(2);
        for q in &queries {
            bytes.put_i64_le(q.time.as_secs());
            bytes.put_f64_le(q.pos.x);
            bytes.put_f64_le(q.pos.y);
        }
        let crc = crc32(&bytes);
        bytes.put_u32_le(crc);
        match BinaryCodec.decode_request(&bytes).unwrap() {
            Request::QueryBatch { seq, queries: q } => {
                assert_eq!(seq, 7);
                assert_eq!(*q, queries[..]);
            }
            other => panic!("{other:?}"),
        }
        // Binary v2 value batch: seq but no generation before the count.
        let mut resp = Vec::new();
        resp.put_u8(0x85);
        resp.put_u8(BATCH_VERSION_V2);
        resp.put_u32_le(9);
        resp.put_u32_le(1);
        resp.put_u8(0x01);
        resp.put_f64_le(1.5);
        let crc = crc32(&resp);
        resp.put_u32_le(crc);
        match BinaryCodec.decode_response(&resp).unwrap() {
            Response::ValueBatch {
                seq,
                generation,
                values,
            } => {
                assert_eq!((seq, generation), (9, 0));
                assert_eq!(*values, [Some(1.5)]);
            }
            other => panic!("{other:?}"),
        }
        // Text v2: header carries seq but no gen, trailer still required.
        let body = "RESPONSE value-batch v=2 seq=9 n=1\nv s=1.500000000\n";
        let crc = crc32(body.as_bytes());
        let text = format!("{body}crc={crc:08X}\n");
        match TextCodec.decode_response(text.as_bytes()).unwrap() {
            Response::ValueBatch {
                seq,
                generation,
                values,
            } => {
                assert_eq!((seq, generation), (9, 0));
                assert_eq!(*values, [Some(1.5)]);
            }
            other => panic!("{other:?}"),
        }
        // Text v2 query batch.
        let body = "REQUEST query-batch v=2 seq=7 n=1\nq time=60 x=1.500000 y=-0.250000\n";
        let crc = crc32(body.as_bytes());
        let text = format!("{body}crc={crc:08X}\n");
        match TextCodec.decode_request(text.as_bytes()).unwrap() {
            Request::QueryBatch { seq, queries: q } => {
                assert_eq!(seq, 7);
                assert_eq!(q.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_rejects_oversized_count() {
        // Crafted as v1 so the count guard is reached directly (a v2 frame
        // with a hostile count dies at the CRC check first unless the
        // attacker also computes a valid checksum — covered below).
        let mut bytes = Vec::new();
        bytes.put_u8(0x03);
        bytes.put_u8(BATCH_VERSION_V1);
        bytes.put_u32_le(u32::MAX);
        assert!(matches!(
            BinaryCodec.decode_request(&bytes),
            Err(CodecError::Malformed(_))
        ));
        let text = format!("REQUEST query-batch v=1 n={}\n", MAX_BATCH + 1);
        assert!(matches!(
            TextCodec.decode_request(text.as_bytes()),
            Err(CodecError::Malformed(_))
        ));
        // v2 with a *valid* CRC over a hostile count: still rejected before
        // any allocation.
        let mut v2 = Vec::new();
        v2.put_u8(0x03);
        v2.put_u8(BATCH_VERSION);
        v2.put_u32_le(0);
        v2.put_u32_le(u32::MAX);
        let crc = {
            let mut c = Crc32::new();
            c.update(&v2);
            c.finish()
        };
        v2.put_u32_le(crc);
        match BinaryCodec.decode_request(&v2) {
            Err(CodecError::Malformed(m)) => assert!(m.contains("cap"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn batch_rejects_truncation_and_trailing_garbage() {
        let bytes = BinaryCodec.encode_request(&sample_batch(3));
        for cut in [bytes.len() - 1, bytes.len() - 24, 7] {
            assert!(
                BinaryCodec.decode_request(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut padded = bytes;
        padded.push(0xEE);
        assert!(BinaryCodec.decode_request(&padded).is_err());
        // Text: declared count mismatching the line count, both ways (v1
        // frames, which have no CRC to catch it first).
        let short = "REQUEST query-batch v=1 n=2\nq time=0 x=0 y=0\n";
        assert!(TextCodec.decode_request(short.as_bytes()).is_err());
        let long = "REQUEST query-batch v=1 n=1\nq time=0 x=0 y=0\nq time=1 x=0 y=0\n";
        assert!(TextCodec.decode_request(long.as_bytes()).is_err());
        // Text v2: dropping the crc trailer is a decode error.
        let encoded = String::from_utf8(TextCodec.encode_request(&sample_batch(2))).unwrap();
        let without_trailer =
            encoded
                .lines()
                .filter(|l| !l.starts_with("crc="))
                .fold(String::new(), |mut s, l| {
                    s.push_str(l);
                    s.push('\n');
                    s
                });
        assert!(TextCodec
            .decode_request(without_trailer.as_bytes())
            .is_err());
    }

    #[test]
    fn value_batch_rejects_bad_flag() {
        // v1 frame so the flag check is reached without a matching CRC.
        let mut bytes = Vec::new();
        bytes.put_u8(0x85);
        bytes.put_u8(BATCH_VERSION_V1);
        bytes.put_u32_le(1);
        bytes.put_u8(0x7F); // neither miss nor present
        assert_eq!(
            BinaryCodec.decode_response(&bytes),
            Err(CodecError::BadTag(0x7F))
        );
    }

    fn sample_ingest(n: usize) -> Request {
        Request::IngestBatch {
            source: 0xDEAD_BEEF_0042,
            seq: 11,
            tuples: (0..n)
                .map(|i| {
                    RawTuple::new(
                        Timestamp::from_secs(i as i64 * 30),
                        Point::new(i as f64 * 2.5, -(i as f64) * 0.125),
                        400.0 + i as f64,
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn ingest_roundtrip_all_codecs() {
        let ack = Response::IngestAck {
            seq: 11,
            durable_upto: 123_456,
        };
        for codec in codecs() {
            for n in [0, 1, 5, 64] {
                let req = sample_ingest(n);
                let back = codec.decode_request(&codec.encode_request(&req)).unwrap();
                assert_eq!(back, req, "{} n={n}", codec.name());
            }
            let bytes = codec.encode_response(&ack);
            assert_eq!(
                codec.decode_response(&bytes).unwrap(),
                ack,
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn binary_ingest_size_formula() {
        // tag(1) + version(1) + source(8) + seq(4) + count(4) + 32 per
        // tuple + crc(4).
        let bytes = BinaryCodec.encode_request(&sample_ingest(16));
        assert_eq!(bytes.len(), 22 + 16 * 32);
        // Ack: tag(1) + version(1) + seq(4) + durable(8) + crc(4).
        let ack = Response::IngestAck {
            seq: 1,
            durable_upto: 2,
        };
        assert_eq!(BinaryCodec.encode_response(&ack).len(), 18);
    }

    #[test]
    fn ingest_rejects_any_single_bit_flip() {
        // Same CRC guarantee the query frames carry: flipping any payload
        // byte of an ingest frame must be a decode error, never a
        // mis-decoded batch. (Offset 0 is the tag — a flip there is a
        // BadTag or a different frame, so start at the version byte.)
        let good = BinaryCodec.encode_request(&sample_ingest(2));
        for idx in 1..good.len() {
            let mut bad = good.clone();
            bad[idx] ^= 0x40;
            assert!(
                BinaryCodec.decode_request(&bad).is_err(),
                "flip at {idx} slipped through"
            );
        }
        let ack = Response::IngestAck {
            seq: 3,
            durable_upto: 99,
        };
        let good = BinaryCodec.encode_response(&ack);
        for idx in 1..good.len() {
            let mut bad = good.clone();
            bad[idx] ^= 0x40;
            assert!(
                BinaryCodec.decode_response(&bad).is_err(),
                "ack flip at {idx} slipped through"
            );
        }
    }

    #[test]
    fn ingest_rejects_truncation_and_oversize() {
        let bytes = BinaryCodec.encode_request(&sample_ingest(3));
        for cut in [1, 7, 21, bytes.len() - 1] {
            assert!(
                BinaryCodec.decode_request(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut padded = bytes;
        padded.push(0xEE);
        assert!(BinaryCodec.decode_request(&padded).is_err());
        // Hostile count with a valid CRC: rejected at the cap, before any
        // allocation.
        let mut frame = Vec::new();
        frame.put_u8(TAG_INGEST);
        frame.put_u8(BATCH_VERSION);
        frame.put_u64_le(1);
        frame.put_u32_le(0);
        frame.put_u32_le(u32::MAX);
        let crc = crc32(&frame);
        frame.put_u32_le(crc);
        match BinaryCodec.decode_request(&frame) {
            Err(CodecError::Malformed(m)) => assert!(m.contains("cap"), "{m}"),
            other => panic!("{other:?}"),
        }
        // Text: count/line mismatch is caught even with a valid trailer.
        let body = "REQUEST ingest-batch v=3 source=1 seq=0 n=2\nb time=0 x=0.000000 y=0.000000 s=1.000000000\n";
        let crc = crc32(body.as_bytes());
        let text = format!("{body}crc={crc:08X}\n");
        assert!(TextCodec.decode_request(text.as_bytes()).is_err());
    }

    #[test]
    fn ingest_rejects_non_finite_tuples() {
        // The durable write path must never ack a tuple it cannot store;
        // the codec is the first line of defence.
        for payload in ["nan", "inf", "-inf"] {
            let body = format!(
                "REQUEST ingest-batch v=3 source=1 seq=0 n=1\nb time=0 x=0.000000 y=0.000000 s={payload}\n"
            );
            let crc = crc32(body.as_bytes());
            let text = format!("{body}crc={crc:08X}\n");
            match TextCodec.decode_request(text.as_bytes()) {
                Err(CodecError::Malformed(m)) => assert!(m.contains("non-finite"), "{m}"),
                other => panic!("{payload}: {other:?}"),
            }
        }
        // Binary: patch a stored value to NaN and re-seal the CRC so only
        // the finiteness check can reject it.
        let mut bytes = BinaryCodec.encode_request(&sample_ingest(1));
        let value_at = 18; // tag+ver+source+seq+count, then time(8)+x(8)+y(8)
        bytes.truncate(bytes.len() - 4); // drop the old crc
        bytes[value_at + 24..value_at + 32].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let crc = crc32(&bytes);
        bytes.put_u32_le(crc);
        match BinaryCodec.decode_request(&bytes) {
            Err(CodecError::Malformed(m)) => assert!(m.contains("non-finite"), "{m}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ingest_frames_are_v3_only() {
        for codec in codecs() {
            let mut bytes = codec.encode_request(&sample_ingest(1));
            match codec.name() {
                "binary" => bytes[1] = BATCH_VERSION_V2,
                _ => {
                    let s = String::from_utf8(bytes).unwrap();
                    bytes = s.replace("v=3", "v=2").into_bytes();
                }
            }
            match codec.decode_request(&bytes) {
                Err(CodecError::Malformed(m)) => {
                    assert!(m.contains("version"), "{}: {m}", codec.name())
                }
                other => panic!("{}: {other:?}", codec.name()),
            }
        }
    }

    #[test]
    fn encode_into_appends_without_clearing() {
        // The scratch-buffer contract: encoders append, callers clear.
        let mut out = vec![0xAA];
        BinaryCodec.encode_request_into(
            &Request::ModelRequest {
                time: Timestamp::ZERO,
            },
            &mut out,
        );
        assert_eq!(out[0], 0xAA);
        assert_eq!(out.len(), 1 + 9);
    }
}
