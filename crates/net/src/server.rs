//! The EnviroMeter server endpoint.

use crate::buffers;
use crate::codec::WireCodec;
use crate::ingest::IngestState;
use crate::protocol::{ErrorCode, ProtocolError, Request, Response, WireCover};
use enviro_data::QueryTuple;
use enviro_meter::{EnviroMeter, QueryMethod};
use enviro_schedule::sync::Arc;

/// The server side of Figure 3: decodes a request, consults the platform,
/// encodes the response.
///
/// Value queries are served with the given [`QueryMethod`] —
/// [`QueryMethod::ModelCover`] in production (the whole point of the
/// paper), but the evaluation can plug any method to isolate network
/// effects from processing effects.
///
/// A server built [`EnviroServer::with_ingest`] additionally accepts
/// `IngestBatch` frames on the durable write path, and serves value/model
/// queries from the ingest state's published covers once any exist (the
/// static platform remains the fallback for times the stream has not
/// covered yet). Every `ValueBatch` reply then carries the current cover
/// generation so caching clients can invalidate.
pub struct EnviroServer<C: WireCodec> {
    platform: EnviroMeter,
    codec: C,
    method: QueryMethod,
    ingest: Option<Arc<IngestState>>,
}

impl<C: WireCodec> EnviroServer<C> {
    /// Creates a server over a platform.
    pub fn new(platform: EnviroMeter, codec: C, method: QueryMethod) -> Self {
        Self {
            platform,
            codec,
            method,
            ingest: None,
        }
    }

    /// Attaches a durable ingest state: `IngestBatch` frames are accepted,
    /// and queries prefer the stream's published covers.
    pub fn with_ingest(mut self, ingest: Arc<IngestState>) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// The platform behind the server.
    pub fn platform(&self) -> &EnviroMeter {
        &self.platform
    }

    /// The attached ingest state, if the server accepts writes.
    pub fn ingest_state(&self) -> Option<&Arc<IngestState>> {
        self.ingest.as_ref()
    }

    /// The codec in use.
    pub fn codec(&self) -> &C {
        &self.codec
    }

    /// The cover generation stamped into `ValueBatch` replies (0 when the
    /// server does not ingest).
    fn generation(&self) -> u64 {
        self.ingest.as_ref().map_or(0, |i| i.generation())
    }

    /// Handles one decoded request.
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Query { time, pos } => {
                let q = QueryTuple::new(*time, *pos);
                match self.answer_query(&q) {
                    Some(value) => Response::Value { value },
                    None => Response::NoData,
                }
            }
            Request::ModelRequest { time } => {
                // The stream's published cover wins when one exists; the
                // static platform covers the pre-ingest past.
                if let Some(cover) = self
                    .ingest
                    .as_ref()
                    .and_then(|ingest| ingest.cover_at(*time))
                {
                    if !cover.is_empty() {
                        return Response::Cover(WireCover::from_cover(cover.as_ref()));
                    }
                    return Response::NoData;
                }
                match self.platform.cover_at(*time) {
                    Some(cover) if !cover.is_empty() => {
                        Response::Cover(WireCover::from_cover(cover))
                    }
                    _ => Response::NoData,
                }
            }
            Request::QueryBatch { seq, queries } => {
                // The value buffer comes from the thread's pool and goes
                // back to it in `handle_bytes_into` after encoding, so a
                // steady-state worker serves batches without allocating.
                // The request's sequence number is echoed so the client can
                // pair this reply with its chunk even after retries.
                let mut values = buffers::take_values();
                match self.ingest.as_ref().filter(|i| i.can_answer_queries()) {
                    Some(ingest) => {
                        values.extend(queries.iter().map(|q| ingest.query(q).flatten()));
                    }
                    None => {
                        self.platform
                            .point_query_batch_into(queries, self.method, &mut values);
                    }
                }
                Response::ValueBatch {
                    seq: *seq,
                    generation: self.generation(),
                    values,
                }
            }
            Request::IngestBatch {
                source,
                seq,
                tuples,
            } => match &self.ingest {
                Some(ingest) => match ingest.ingest(*source, *seq, tuples) {
                    Ok(outcome) => Response::IngestAck {
                        seq: *seq,
                        durable_upto: outcome.durable_upto,
                    },
                    // The append failed *before* anything was acked: the
                    // client backs off and retransmits; durability is
                    // never overpromised.
                    Err(e) => Response::Error(ProtocolError::new(
                        ErrorCode::Internal,
                        format!("ingest failed: {e}"),
                    )),
                },
                None => Response::Error(ProtocolError::new(
                    ErrorCode::Unsupported,
                    "this server does not accept ingestion",
                )),
            },
        }
    }

    /// Answers one point query: published covers first (once any exist),
    /// the batch platform otherwise.
    fn answer_query(&self, q: &QueryTuple) -> Option<f64> {
        match self.ingest.as_ref().filter(|i| i.can_answer_queries()) {
            Some(ingest) => ingest.query(q).flatten(),
            None => self.platform.point_query(q, self.method),
        }
    }

    /// Handles one encoded request: the byte-in/byte-out entry point used
    /// by transports.
    ///
    /// This is infallible by design: a frame that fails to decode produces
    /// an encoded [`Response::Error`] reply instead of an `Err`, so one
    /// corrupt message from a flaky phone can never tear down the
    /// connection or panic the endpoint.
    pub fn handle_bytes(&self, request_bytes: &[u8]) -> Vec<u8> {
        let mut reply = Vec::with_capacity(64);
        self.handle_bytes_into(request_bytes, &mut reply);
        reply
    }

    /// [`EnviroServer::handle_bytes`] into a caller-owned reply buffer:
    /// `reply` is cleared, then filled with the encoded response.
    ///
    /// This is the zero-allocation serving path: with a warmed engine and a
    /// recycled `reply` buffer, decoding, query processing and encoding of
    /// `Query`/`QueryBatch` frames touch no allocator (batch `Vec`s come
    /// from the per-thread pool in [`crate::buffers`] and are returned
    /// here).
    pub fn handle_bytes_into(&self, request_bytes: &[u8], reply: &mut Vec<u8>) {
        reply.clear();
        match self.codec.decode_request(request_bytes) {
            Ok(request) => {
                let response = self.handle(&request);
                self.codec.encode_response_into(&response, reply);
                if let Request::QueryBatch { queries, .. } = request {
                    buffers::recycle_queries(queries);
                }
                if let Response::ValueBatch { values, .. } = response {
                    buffers::recycle_values(values);
                }
            }
            Err(e) => {
                let response =
                    Response::Error(ProtocolError::new(ErrorCode::BadRequest, e.to_string()));
                self.codec.encode_response_into(&response, reply);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BinaryCodec;
    use enviro_data::{LausanneSim, SimConfig, Timestamp, WindowSpec};
    use enviro_geo::Point;
    use enviro_meter::AdKmnConfig;

    fn server() -> EnviroServer<BinaryCodec> {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 2 * 3_600,
            seed: 77,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover)
    }

    #[test]
    fn value_query_returns_value() {
        let s = server();
        let resp = s.handle(&Request::Query {
            time: Timestamp::from_secs(600),
            pos: Point::new(0.0, -200.0),
        });
        match resp {
            Response::Value { value } => assert!((100.0..3_000.0).contains(&value)),
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn model_request_returns_cover() {
        let s = server();
        let resp = s.handle(&Request::ModelRequest {
            time: Timestamp::from_secs(600),
        });
        match resp {
            Response::Cover(cover) => {
                assert!(!cover.is_empty());
                assert!(cover.valid_until >= Timestamp::from_secs(600));
            }
            other => panic!("expected cover, got {other:?}"),
        }
    }

    #[test]
    fn batch_reply_echoes_request_sequence_number() {
        let s = server();
        let resp = s.handle(&Request::QueryBatch {
            seq: 41,
            queries: vec![QueryTuple::new(
                Timestamp::from_secs(600),
                Point::new(0.0, -200.0),
            )],
        });
        match resp {
            Response::ValueBatch {
                seq,
                generation,
                values,
            } => {
                assert_eq!(seq, 41);
                assert_eq!(generation, 0, "no ingest state => generation 0");
                assert_eq!(values.len(), 1);
            }
            other => panic!("expected value batch, got {other:?}"),
        }
    }

    #[test]
    fn ingest_without_state_is_unsupported() {
        let s = server();
        let resp = s.handle(&Request::IngestBatch {
            source: 7,
            seq: 1,
            tuples: vec![enviro_data::RawTuple::new(
                Timestamp::from_secs(60),
                Point::origin(),
                400.0,
            )],
        });
        match resp {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Unsupported),
            other => panic!("expected unsupported error, got {other:?}"),
        }
    }

    #[test]
    fn ingest_server_acks_and_stamps_generations() {
        use crate::ingest::{IngestConfig, IngestState};
        use enviro_data::RawTuple;
        use enviro_storage::WalConfig;

        let dir = std::env::temp_dir().join(format!("enviro-server-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let state = Arc::new(
            IngestState::open(
                &dir,
                WalConfig {
                    window_secs: 3_600,
                    ..WalConfig::default()
                },
                IngestConfig::default(),
            )
            .unwrap(),
        );
        let s = server().with_ingest(Arc::clone(&state));

        // Write a batch over the wire path.
        let tuples: Vec<RawTuple> = (0..32)
            .map(|i| {
                RawTuple::new(
                    Timestamp::from_secs(600 + i),
                    Point::new(f64::from(i as u32) * 20.0, -100.0),
                    420.0 + f64::from(i as u32),
                )
            })
            .collect();
        let resp = s.handle(&Request::IngestBatch {
            source: 9,
            seq: 3,
            tuples,
        });
        match resp {
            Response::IngestAck { seq, durable_upto } => {
                assert_eq!(seq, 3);
                assert_eq!(durable_upto, 32);
            }
            other => panic!("expected ingest ack, got {other:?}"),
        }

        // Before any cover is published, batch replies stamp generation 0
        // and queries fall back to the static platform.
        let q = Request::QueryBatch {
            seq: 1,
            queries: vec![QueryTuple::new(
                Timestamp::from_secs(600),
                Point::new(0.0, -200.0),
            )],
        };
        match s.handle(&q) {
            Response::ValueBatch { generation, .. } => assert_eq!(generation, 0),
            other => panic!("expected value batch, got {other:?}"),
        }

        // Publish covers for the ingested window; replies now carry the new
        // generation and answers come from the stream's cover.
        state.rebuild_dirty_now().unwrap();
        assert!(state.generation() > 0);
        match s.handle(&q) {
            Response::ValueBatch {
                generation, values, ..
            } => {
                assert_eq!(generation, state.generation());
                assert!(values[0].is_some(), "published cover should answer");
            }
            other => panic!("expected value batch, got {other:?}"),
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handle_bytes_roundtrip() {
        let s = server();
        let req = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::from_secs(60),
            pos: Point::new(100.0, 0.0),
        });
        let resp_bytes = s.handle_bytes(&req);
        let resp = BinaryCodec.decode_response(&resp_bytes).unwrap();
        assert!(matches!(resp, Response::Value { .. }));
    }

    #[test]
    fn handle_bytes_replies_to_garbage_with_protocol_error() {
        let s = server();
        let resp_bytes = s.handle_bytes(&[0xAB, 0xCD]);
        match BinaryCodec.decode_response(&resp_bytes).unwrap() {
            Response::Error(e) => assert_eq!(e.code, crate::protocol::ErrorCode::BadRequest),
            other => panic!("expected error reply, got {other:?}"),
        }
    }

    #[test]
    fn server_stays_usable_after_bad_frame() {
        let s = server();
        // A garbage frame, then a valid query: the error reply must not
        // poison the endpoint.
        let _ = s.handle_bytes(b"\xFF\xFF\xFF");
        let req = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::from_secs(60),
            pos: Point::new(100.0, 0.0),
        });
        let resp = BinaryCodec.decode_response(&s.handle_bytes(&req)).unwrap();
        assert!(matches!(resp, Response::Value { .. }));
    }

    #[test]
    fn empty_platform_says_no_data() {
        let platform = EnviroMeter::new(
            enviro_data::Dataset::new(enviro_data::Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            500.0,
        );
        let s = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
        assert_eq!(
            s.handle(&Request::ModelRequest {
                time: Timestamp::ZERO
            }),
            Response::NoData
        );
        assert_eq!(
            s.handle(&Request::Query {
                time: Timestamp::ZERO,
                pos: Point::origin()
            }),
            Response::NoData
        );
    }
}
