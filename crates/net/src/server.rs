//! The EnviroMeter server endpoint.

use crate::buffers;
use crate::codec::WireCodec;
use crate::protocol::{ErrorCode, ProtocolError, Request, Response, WireCover};
use enviro_data::QueryTuple;
use enviro_meter::{EnviroMeter, QueryMethod};

/// The server side of Figure 3: decodes a request, consults the platform,
/// encodes the response.
///
/// Value queries are served with the given [`QueryMethod`] —
/// [`QueryMethod::ModelCover`] in production (the whole point of the
/// paper), but the evaluation can plug any method to isolate network
/// effects from processing effects.
pub struct EnviroServer<C: WireCodec> {
    platform: EnviroMeter,
    codec: C,
    method: QueryMethod,
}

impl<C: WireCodec> EnviroServer<C> {
    /// Creates a server over a platform.
    pub fn new(platform: EnviroMeter, codec: C, method: QueryMethod) -> Self {
        Self {
            platform,
            codec,
            method,
        }
    }

    /// The platform behind the server.
    pub fn platform(&self) -> &EnviroMeter {
        &self.platform
    }

    /// The codec in use.
    pub fn codec(&self) -> &C {
        &self.codec
    }

    /// Handles one decoded request.
    pub fn handle(&self, request: &Request) -> Response {
        match request {
            Request::Query { time, pos } => {
                let q = QueryTuple::new(*time, *pos);
                match self.platform.point_query(&q, self.method) {
                    Some(value) => Response::Value { value },
                    None => Response::NoData,
                }
            }
            Request::ModelRequest { time } => match self.platform.cover_at(*time) {
                Some(cover) if !cover.is_empty() => Response::Cover(WireCover::from_cover(cover)),
                _ => Response::NoData,
            },
            Request::QueryBatch { seq, queries } => {
                // The value buffer comes from the thread's pool and goes
                // back to it in `handle_bytes_into` after encoding, so a
                // steady-state worker serves batches without allocating.
                // The request's sequence number is echoed so the client can
                // pair this reply with its chunk even after retries.
                let mut values = buffers::take_values();
                self.platform
                    .point_query_batch_into(queries, self.method, &mut values);
                Response::ValueBatch { seq: *seq, values }
            }
        }
    }

    /// Handles one encoded request: the byte-in/byte-out entry point used
    /// by transports.
    ///
    /// This is infallible by design: a frame that fails to decode produces
    /// an encoded [`Response::Error`] reply instead of an `Err`, so one
    /// corrupt message from a flaky phone can never tear down the
    /// connection or panic the endpoint.
    pub fn handle_bytes(&self, request_bytes: &[u8]) -> Vec<u8> {
        let mut reply = Vec::with_capacity(64);
        self.handle_bytes_into(request_bytes, &mut reply);
        reply
    }

    /// [`EnviroServer::handle_bytes`] into a caller-owned reply buffer:
    /// `reply` is cleared, then filled with the encoded response.
    ///
    /// This is the zero-allocation serving path: with a warmed engine and a
    /// recycled `reply` buffer, decoding, query processing and encoding of
    /// `Query`/`QueryBatch` frames touch no allocator (batch `Vec`s come
    /// from the per-thread pool in [`crate::buffers`] and are returned
    /// here).
    pub fn handle_bytes_into(&self, request_bytes: &[u8], reply: &mut Vec<u8>) {
        reply.clear();
        match self.codec.decode_request(request_bytes) {
            Ok(request) => {
                let response = self.handle(&request);
                self.codec.encode_response_into(&response, reply);
                if let Request::QueryBatch { queries, .. } = request {
                    buffers::recycle_queries(queries);
                }
                if let Response::ValueBatch { values, .. } = response {
                    buffers::recycle_values(values);
                }
            }
            Err(e) => {
                let response =
                    Response::Error(ProtocolError::new(ErrorCode::BadRequest, e.to_string()));
                self.codec.encode_response_into(&response, reply);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BinaryCodec;
    use enviro_data::{LausanneSim, SimConfig, Timestamp, WindowSpec};
    use enviro_geo::Point;
    use enviro_meter::AdKmnConfig;

    fn server() -> EnviroServer<BinaryCodec> {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 2 * 3_600,
            seed: 77,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover)
    }

    #[test]
    fn value_query_returns_value() {
        let s = server();
        let resp = s.handle(&Request::Query {
            time: Timestamp::from_secs(600),
            pos: Point::new(0.0, -200.0),
        });
        match resp {
            Response::Value { value } => assert!((100.0..3_000.0).contains(&value)),
            other => panic!("expected value, got {other:?}"),
        }
    }

    #[test]
    fn model_request_returns_cover() {
        let s = server();
        let resp = s.handle(&Request::ModelRequest {
            time: Timestamp::from_secs(600),
        });
        match resp {
            Response::Cover(cover) => {
                assert!(!cover.is_empty());
                assert!(cover.valid_until >= Timestamp::from_secs(600));
            }
            other => panic!("expected cover, got {other:?}"),
        }
    }

    #[test]
    fn batch_reply_echoes_request_sequence_number() {
        let s = server();
        let resp = s.handle(&Request::QueryBatch {
            seq: 41,
            queries: vec![QueryTuple::new(
                Timestamp::from_secs(600),
                Point::new(0.0, -200.0),
            )],
        });
        match resp {
            Response::ValueBatch { seq, values } => {
                assert_eq!(seq, 41);
                assert_eq!(values.len(), 1);
            }
            other => panic!("expected value batch, got {other:?}"),
        }
    }

    #[test]
    fn handle_bytes_roundtrip() {
        let s = server();
        let req = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::from_secs(60),
            pos: Point::new(100.0, 0.0),
        });
        let resp_bytes = s.handle_bytes(&req);
        let resp = BinaryCodec.decode_response(&resp_bytes).unwrap();
        assert!(matches!(resp, Response::Value { .. }));
    }

    #[test]
    fn handle_bytes_replies_to_garbage_with_protocol_error() {
        let s = server();
        let resp_bytes = s.handle_bytes(&[0xAB, 0xCD]);
        match BinaryCodec.decode_response(&resp_bytes).unwrap() {
            Response::Error(e) => assert_eq!(e.code, crate::protocol::ErrorCode::BadRequest),
            other => panic!("expected error reply, got {other:?}"),
        }
    }

    #[test]
    fn server_stays_usable_after_bad_frame() {
        let s = server();
        // A garbage frame, then a valid query: the error reply must not
        // poison the endpoint.
        let _ = s.handle_bytes(b"\xFF\xFF\xFF");
        let req = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::from_secs(60),
            pos: Point::new(100.0, 0.0),
        });
        let resp = BinaryCodec.decode_response(&s.handle_bytes(&req)).unwrap();
        assert!(matches!(resp, Response::Value { .. }));
    }

    #[test]
    fn empty_platform_says_no_data() {
        let platform = EnviroMeter::new(
            enviro_data::Dataset::new(enviro_data::Pollutant::Co2),
            WindowSpec::ByCount(10),
            AdKmnConfig::default(),
            500.0,
        );
        let s = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
        assert_eq!(
            s.handle(&Request::ModelRequest {
                time: Timestamp::ZERO
            }),
            Response::NoData
        );
        assert_eq!(
            s.handle(&Request::Query {
                time: Timestamp::ZERO,
                pos: Point::origin()
            }),
            Response::NoData
        );
    }
}
