//! EnviroMeter's mobile data protocol (§2.3 of the paper).
//!
//! Smartphones reach the EnviroMeter server over GPRS/3G. Bandwidth and
//! battery are scarce, so the paper proposes **model-cache**: instead of one
//! round-trip per query tuple (the *baseline*), the phone downloads the
//! current model cover `(t_n, µ, M)` once and answers queries locally until
//! the cover expires.
//!
//! This crate provides everything Figure 7(b) measures:
//!
//! * [`protocol`] — the request/response message types.
//! * [`codec`] — a compact fixed-layout binary codec (and a verbose text
//!   codec for the ablation), with byte-exact size accounting.
//! * [`link`] — a deterministic simulated cellular link: virtual clock,
//!   per-direction throughput, round-trip latency, and per-message protocol
//!   overhead (TCP/IP headers over a PDP context).
//! * [`server`] — the EnviroMeter server endpoint: decodes requests,
//!   consults the [`enviro_meter::EnviroMeter`] platform, encodes responses.
//! * [`client`] — [`client::BaselineClient`] and
//!   [`client::ModelCacheClient`] running Query 1 trajectories end-to-end,
//!   with [`client::SessionStats`] capturing bytes sent/received and elapsed
//!   (virtual) time; plus [`client::EnviroClient`], the production client
//!   speaking batched `QueryBatch` frames over any [`client::Wire`].
//! * [`transport`] — an in-process channel transport
//!   (server on its own thread) demonstrating the full deployment shape.
//! * [`concurrent`] — the sharded thread-pool server:
//!   [`concurrent::ConcurrentTransport`] runs N workers over one shared
//!   platform, with pipelined per-connection [`concurrent::Session`]s.
//! * [`buffers`] — per-thread buffer pools backing the allocation-free
//!   steady-state serving path.
//! * [`clock`] — injectable time ([`clock::SystemClock`] /
//!   [`clock::VirtualClock`]) behind deadlines, backoff and outages, so
//!   resilience tests never sleep.
//! * [`fault`] — the chaos layer: [`fault::ChaosWire`] perturbs any wire
//!   per a seeded declarative [`fault::FaultPlan`] (drop / duplicate /
//!   reorder / corrupt / delay / stall / scripted outages).
//! * [`ingest`] — the durable write path: [`ingest::IngestState`] appends
//!   `IngestBatch` frames to a WAL-backed store and a background
//!   [`ingest::ModelMaintenance`] worker rebuilds Ad-KMN covers off the hot
//!   path, publishing them atomically via an epoch-versioned registry.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

pub mod buffers;
pub mod client;
pub mod clock;
pub mod codec;
pub mod concurrent;
pub mod fault;
pub mod ingest;
pub mod link;
pub mod protocol;
pub mod server;
pub mod transport;

pub use client::{
    BaselineClient, ClientError, EnviroClient, IngestReport, LoopbackWire, ModelCacheClient,
    ResilienceStats, RetryPolicy, SessionStats, Wire,
};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use codec::{BinaryCodec, TextCodec, WireCodec};
pub use concurrent::{ConcurrentTransport, Session, TransportConfig, PIPELINE_MAX};
pub use fault::{ChaosStats, ChaosWire, FaultPlan, Outage, XorShiftRng};
pub use ingest::{IngestConfig, IngestOutcome, IngestState, IngestStats, ModelMaintenance};
pub use link::{LinkProfile, SimulatedLink};
pub use protocol::{
    ErrorCode, ProtocolError, Request, Response, WireCover, WireRegion, BATCH_VERSION,
    BATCH_VERSION_V1, MAX_BATCH,
};
pub use server::EnviroServer;
pub use transport::{ChannelTransport, TransportError};
