//! EnviroMeter's mobile data protocol (§2.3 of the paper).
//!
//! Smartphones reach the EnviroMeter server over GPRS/3G. Bandwidth and
//! battery are scarce, so the paper proposes **model-cache**: instead of one
//! round-trip per query tuple (the *baseline*), the phone downloads the
//! current model cover `(t_n, µ, M)` once and answers queries locally until
//! the cover expires.
//!
//! This crate provides everything Figure 7(b) measures:
//!
//! * [`protocol`] — the request/response message types.
//! * [`codec`] — a compact fixed-layout binary codec (and a verbose text
//!   codec for the ablation), with byte-exact size accounting.
//! * [`link`] — a deterministic simulated cellular link: virtual clock,
//!   per-direction throughput, round-trip latency, and per-message protocol
//!   overhead (TCP/IP headers over a PDP context).
//! * [`server`] — the EnviroMeter server endpoint: decodes requests,
//!   consults the [`enviro_meter::EnviroMeter`] platform, encodes responses.
//! * [`client`] — [`client::BaselineClient`] and
//!   [`client::ModelCacheClient`] running Query 1 trajectories end-to-end,
//!   with [`client::SessionStats`] capturing bytes sent/received and elapsed
//!   (virtual) time.
//! * [`transport`] — an in-process channel transport
//!   (server on its own thread) demonstrating the full deployment shape.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

pub mod client;
pub mod codec;
pub mod link;
pub mod protocol;
pub mod server;
pub mod transport;

pub use client::{BaselineClient, ClientError, ModelCacheClient, SessionStats};
pub use codec::{BinaryCodec, TextCodec, WireCodec};
pub use link::{LinkProfile, SimulatedLink};
pub use protocol::{ErrorCode, ProtocolError, Request, Response, WireCover, WireRegion};
pub use server::EnviroServer;
pub use transport::{ChannelTransport, TransportError};
