//! In-process channel transport: the server on its own thread.
//!
//! The virtual-clock evaluation calls the server directly; this module shows
//! the same byte-level protocol running across a real thread boundary —
//! the deployment shape of the demo (Android app ↔ EnviroMeter server) —
//! using crossbeam channels as the wire.

use crate::codec::WireCodec;
use crate::server::EnviroServer;
use crossbeam::channel::{bounded, Receiver, Sender};
use enviro_schedule::thread::JoinHandle;

/// Errors crossing the channel wire (the transport layer, not the
/// protocol: a malformed request comes back as `Ok` bytes encoding a
/// [`crate::protocol::Response::Error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The server thread is gone (shut down or panicked).
    Disconnected,
    /// A session has [`crate::concurrent::PIPELINE_MAX`] requests in
    /// flight; receive replies before sending more.
    PipelineFull,
    /// `recv` was called on a session with no request in flight (it would
    /// block forever).
    NoPendingReply,
    /// The exchange did not complete within the caller's deadline. Raised
    /// by fault-injecting wires ([`crate::fault::ChaosWire`]) when a frame
    /// is dropped or stalled past its timeout; a resilient client treats it
    /// as a retryable loss.
    TimedOut,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => f.write_str("server thread terminated"),
            TransportError::PipelineFull => f.write_str("session pipeline is full"),
            TransportError::NoPendingReply => f.write_str("no reply pending on this session"),
            TransportError::TimedOut => f.write_str("exchange timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A request envelope: opaque bytes plus a reply channel.
struct Envelope {
    request: Vec<u8>,
    reply_to: Sender<Vec<u8>>,
}

/// A handle to a server running on a background thread.
///
/// Dropping the transport closes the request channel; the server thread
/// drains and exits, and `Drop` joins it.
pub struct ChannelTransport {
    requests: Option<Sender<Envelope>>,
    worker: Option<JoinHandle<()>>,
}

impl ChannelTransport {
    /// Spawns `server` on a background thread. `Err` means the OS refused
    /// to create the thread.
    pub fn spawn<C>(server: EnviroServer<C>) -> std::io::Result<Self>
    where
        C: WireCodec + Send + 'static,
    {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = bounded(64);
        let worker = enviro_schedule::thread::Builder::new()
            .name("enviro-server".into())
            .spawn(move || {
                for envelope in rx {
                    let reply = server.handle_bytes(&envelope.request);
                    // A dropped reply channel just means the client gave up.
                    let _ = envelope.reply_to.send(reply);
                }
            })?;
        Ok(Self {
            requests: Some(tx),
            worker: Some(worker),
        })
    }

    /// Performs one request/response exchange over the channel wire.
    pub fn call(&self, request: Vec<u8>) -> Result<Vec<u8>, TransportError> {
        let (reply_tx, reply_rx) = bounded(1);
        let Some(requests) = self.requests.as_ref() else {
            return Err(TransportError::Disconnected);
        };
        requests
            .send(Envelope {
                request,
                reply_to: reply_tx,
            })
            .map_err(|_| TransportError::Disconnected)?;
        reply_rx.recv().map_err(|_| TransportError::Disconnected)
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        drop(self.requests.take()); // closes the channel, stopping the loop
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::BinaryCodec;
    use crate::protocol::{Request, Response};
    use enviro_data::{LausanneSim, SimConfig, Timestamp, WindowSpec};
    use enviro_geo::Point;
    use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};

    fn transport() -> ChannelTransport {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 3_600,
            seed: 3,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        ChannelTransport::spawn(EnviroServer::new(
            platform,
            BinaryCodec,
            QueryMethod::ModelCover,
        ))
        .unwrap()
    }

    #[test]
    fn query_across_thread_boundary() {
        let t = transport();
        let req = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::from_secs(100),
            pos: Point::new(0.0, -200.0),
        });
        let resp_bytes = t.call(req).unwrap();
        let resp = BinaryCodec.decode_response(&resp_bytes).unwrap();
        assert!(matches!(resp, Response::Value { .. }));
    }

    #[test]
    fn many_sequential_calls() {
        let t = transport();
        for i in 0..50 {
            let req = BinaryCodec.encode_request(&Request::Query {
                time: Timestamp::from_secs(i * 60),
                pos: Point::new(i as f64 * 10.0, 0.0),
            });
            assert!(t.call(req).is_ok());
        }
    }

    #[test]
    fn garbage_request_returns_error_reply_not_panic() {
        let t = transport();
        // The transport succeeds; the *protocol* reports the error, so the
        // connection stays usable for the next request.
        let reply = t.call(vec![0xDE, 0xAD]).unwrap();
        assert!(matches!(
            BinaryCodec.decode_response(&reply).unwrap(),
            Response::Error(_)
        ));
        let req = BinaryCodec.encode_request(&Request::Query {
            time: Timestamp::from_secs(100),
            pos: Point::new(0.0, -200.0),
        });
        assert!(t.call(req).is_ok());
    }

    #[test]
    fn concurrent_clients() {
        let t = std::sync::Arc::new(transport());
        let mut handles = Vec::new();
        for k in 0..4 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let req = BinaryCodec.encode_request(&Request::Query {
                        time: Timestamp::from_secs((k * 100 + i) * 30),
                        pos: Point::new(i as f64 * 20.0, k as f64 * 50.0),
                    });
                    t.call(req).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let t = transport();
        drop(t); // must not hang or panic
    }
}
