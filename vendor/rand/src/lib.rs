//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The EnviroMeter build environment has no network access, so the
//! workspace vendors the *subset* of the rand 0.8 API it actually uses:
//! [`Rng::gen_range`] over numeric ranges, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the
//! simulators and property tests require (no cryptographic claims).
//!
//! If the real crate ever becomes available again, deleting `vendor/rand`
//! and restoring the registry dependency is a drop-in change: every call
//! site compiles against the upstream API unchanged.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

uint_sample_range!(u8, u16, u32, u64, usize);
int_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against FP rounding landing exactly on `end`.
                if v >= self.end {
                    <$t>::max(self.start, self.end - (self.end - self.start) * 1e-9)
                } else {
                    v
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(-50i64..-40);
            assert!((-50..-40).contains(&i));
        }
    }

    #[test]
    fn inclusive_ranges_hit_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1_300).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
