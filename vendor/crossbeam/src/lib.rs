//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the crossbeam 0.8 API its transport uses — MPMC bounded
//! channels — implemented over the `enviro_schedule::sync` facade
//! (mutex + two condvars over a pre-allocated ring). Call sites compile
//! unchanged against the upstream crate, and because every blocking edge
//! goes through the facade, channel waits are fully visible to the
//! deterministic model checker under `--cfg enviro_schedules`: a worker
//! parked in `recv()` is a modeled condvar waiter, not an opaque OS block.
//!
//! Unlike the previous `std::sync::mpsc` wrapper, receivers here are
//! genuinely multi-consumer, matching upstream.

pub mod channel {
    //! Bounded channels with the crossbeam surface.

    use enviro_schedule::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::collections::VecDeque;

    struct State<T> {
        /// Ring of queued messages; capacity is reserved up front so the
        /// steady state allocates nothing (the serving path is pinned to
        /// zero allocations by an enviro-net test).
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message is queued (receivers wait here).
        not_empty: Condvar,
        /// Signalled when a slot frees up (senders wait here).
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> enviro_schedule::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a bounded channel. Cloneable and shareable
    /// across threads.
    #[derive(Debug)]
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a bounded channel. Cloneable (multi-consumer).
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> std::fmt::Debug for Chan<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("Chan { .. }")
        }
    }

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`], carrying the rejected value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Creates a channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let cap = cap.max(1);
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full. Errors if every
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    drop(st);
                    self.0.not_empty.notify_all();
                    return Ok(());
                }
                st = self
                    .0
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking send: fails immediately with [`TrySendError::Full`]
        /// when the channel is at capacity instead of waiting for room —
        /// the primitive behind overload shedding.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.queue.len() >= st.cap {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Blocked receivers must observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty. Errors if every
        /// sender is gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .0
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive: `None` when no message is ready.
        pub fn try_recv(&self) -> Option<T> {
            let v = self.0.lock().queue.pop_front();
            if v.is_some() {
                self.0.not_full.notify_all();
            }
            v
        }

        /// Iterates over messages until every sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // Blocked senders must observe the disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    /// Owning iterator over a channel's messages.
    #[derive(Debug)]
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            IntoIter(self)
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Box<dyn Iterator<Item = T> + 'a>;

        fn into_iter(self) -> Self::IntoIter {
            Box::new(self.iter())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = bounded(4);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnected_channel_errors() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn queued_messages_survive_sender_disconnect() {
        let (tx, rx) = bounded(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn cloned_senders_share_the_channel() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn cloned_receivers_share_the_channel() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(0).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the first recv below
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }
}
