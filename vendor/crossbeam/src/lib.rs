//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the crossbeam 0.8 API its transport uses — MPMC-flavoured
//! bounded channels — implemented over `std::sync::mpsc`. Call sites
//! compile unchanged against the upstream crate. The one semantic
//! narrowing: receivers are multi-consumer upstream but single-consumer
//! here; EnviroMeter's transport only ever hands a receiver to one thread.

pub mod channel {
    //! Bounded channels with the crossbeam surface.

    use std::sync::mpsc;

    /// The sending half of a bounded channel. Cloneable and shareable
    /// across threads.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`], carrying the rejected value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Creates a channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full. Errors if every
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Non-blocking send: fails immediately with [`TrySendError::Full`]
        /// when the channel is at capacity instead of waiting for room —
        /// the primitive behind overload shedding.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking while the channel is empty. Errors if every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive: `None` when no message is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Iterates over messages until every sender disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = bounded(4);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnected_channel_errors() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn cloned_senders_share_the_channel() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
