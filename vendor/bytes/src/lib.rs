//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the bytes 1.x API its codecs use: the [`Buf`] cursor trait
//! implemented for `&[u8]` and the [`BufMut`] appender trait implemented
//! for `Vec<u8>`, with the little-endian fixed-width accessors. Call sites
//! compile unchanged against the upstream crate.

/// A readable cursor over contiguous bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty (callers bounds-check first).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(take::<4>(self))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(take::<8>(self))
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(take::<4>(self))
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(take::<8>(self))
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(take::<8>(self))
    }

    /// Copies `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Reads `N` bytes as a fixed array, advancing the cursor.
fn take<const N: usize>(buf: &mut (impl Buf + ?Sized)) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(&buf.chunk()[..N]);
    buf.advance(N);
    out
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// A growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, cheaply clonable byte buffer (minimal stand-in).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(std::sync::Arc<Vec<u8>>);

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(std::sync::Arc::new(data.to_vec()))
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(std::sync::Arc::new(v))
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(0xAB);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_i64_le(-7);
        out.put_f64_le(2.5);
        let mut cursor: &[u8] = &out;
        assert_eq!(cursor.remaining(), 21);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_i64_le(), -7);
        assert_eq!(cursor.get_f64_le(), 2.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_reslices() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.chunk(), &[3, 4]);
    }
}
