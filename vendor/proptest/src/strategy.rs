//! Value-generation strategies.

use crate::rng::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream, generation is direct (no value trees, no shrinking),
/// which keeps the shim std-only and small while preserving the call-site
/// API: `prop_map`, ranges, tuples, and `boxed` unions.
pub trait Strategy {
    /// The generated type. `Debug` so failing cases can print inputs.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the [`crate::prop_oneof!`] macro).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.index(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::new(1);
        let strat = (0usize..5, -1.0..1.0f64).prop_map(|(n, x)| (n * 2, x.abs()));
        for _ in 0..1_000 {
            let (n, x) = strat.generate(&mut rng);
            assert!(n % 2 == 0 && n < 10);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::new(2);
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
