//! Collection strategies: `prop::collection::vec`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// The element-count specification [`vec`] accepts: an exact size, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy for `Vec`s of `element` values with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + (rng.next_u64() % span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::vec;
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            assert_eq!(vec(0u8..10, 7).generate(&mut rng).len(), 7);
            let n = vec(0u8..10, 2..5).generate(&mut rng).len();
            assert!((2..5).contains(&n));
            let m = vec(0u8..10, 0..=1).generate(&mut rng).len();
            assert!(m <= 1);
        }
    }
}
