//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest 1.x API its property tests use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`, numeric
//! range strategies, tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`strategy::Just`], [`prop_oneof!`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream, deliberately accepted for a test-only shim:
//!
//! * **No shrinking.** A failing case reports its generated inputs but is
//!   not minimised.
//! * **Deterministic seeding.** The RNG seed derives from the test name,
//!   so failures reproduce exactly across runs and machines. Set
//!   `PROPTEST_SEED=<u64>` to explore a different sequence.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a standard test that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while !runner.done() {
                let mut case = $crate::test_runner::CaseReport::new();
                $(
                    let $arg = {
                        let value =
                            $crate::strategy::Strategy::generate(&$strat, runner.rng());
                        case.record(stringify!($arg), &value);
                        value
                    };
                )+
                let outcome = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                })();
                runner.finish_case(outcome, &case);
            }
        }
    )*};
}

/// Builds a strategy choosing uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assert_eq failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                )
            }
        }
    };
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l)
            }
        }
    };
}

/// Discards the current case (it is regenerated, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}
