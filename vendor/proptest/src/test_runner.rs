//! Case execution: config, runner loop, and failure reporting.

use crate::rng::TestRng;
use std::fmt::Write as _;

/// How a single generated case can fail.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it is not counted.
    Reject(&'static str),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a rendered message.
    pub fn fail(message: String) -> Self {
        Self::Fail(message)
    }

    /// A rejection naming the violated assumption.
    pub fn reject(assumption: &'static str) -> Self {
        Self::Reject(assumption)
    }
}

/// The result type property-test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// The generated inputs of one case, for the failure report.
#[derive(Debug, Default)]
pub struct CaseReport {
    inputs: String,
}

impl CaseReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one named input.
    pub fn record(&mut self, name: &str, value: &dyn std::fmt::Debug) {
        let _ = write!(self.inputs, "\n    {name} = {value:?}");
    }
}

/// Drives the case loop of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
    seed: u64,
    passed: u32,
    rejected: u32,
}

impl TestRunner {
    /// Creates a runner; the RNG seed derives from the test name (override
    /// with `PROPTEST_SEED`).
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        Self {
            config,
            name,
            rng: TestRng::new(seed),
            seed,
            passed: 0,
            rejected: 0,
        }
    }

    /// `true` once the required number of cases has passed.
    pub fn done(&self) -> bool {
        self.passed >= self.config.cases
    }

    /// The input-synthesis RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Accounts for one executed case; panics (failing the test) on
    /// assertion failure or rejection overflow.
    pub fn finish_case(&mut self, outcome: TestCaseResult, case: &CaseReport) {
        match outcome {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject(assumption)) => {
                self.rejected += 1;
                assert!(
                    self.rejected <= self.config.max_global_rejects,
                    "proptest '{}': too many prop_assume! rejections ({}), last: {}",
                    self.name,
                    self.rejected,
                    assumption,
                );
            }
            Err(TestCaseError::Fail(message)) => panic!(
                "proptest '{}' failed at case {} (seed {}): {}\n  inputs:{}",
                self.name, self.passed, self.seed, message, case.inputs,
            ),
        }
    }
}

/// FNV-1a, used to derive per-test seeds from names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
