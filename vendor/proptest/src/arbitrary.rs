//! `any::<T>()`: full-domain strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Full bit-pattern domain: includes NaN, infinities, subnormals —
        // exactly what robustness tests want from `any::<f64>()`.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}
