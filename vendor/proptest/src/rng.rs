//! The shim's internal RNG: SplitMix64, deterministic per test.

/// A tiny deterministic generator for input synthesis.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}
