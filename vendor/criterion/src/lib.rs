//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros. Instead of
//! criterion's statistical machinery this shim does a warm-up, then times
//! a fixed wall-clock budget per benchmark and reports mean ns/iter —
//! enough to compare orders of magnitude offline, not a substitute for
//! real criterion runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark measurement budget.
const BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget before measurement starts.
const WARMUP: Duration = Duration::from_millis(50);

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{id}", self.name), &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports here; the shim only
    /// consumes the handle).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The per-benchmark timing handle passed to closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `f` until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            // Check the clock in batches to keep timer overhead off the
            // measured path for fast bodies.
            if iters.is_multiple_of(16) && start.elapsed() >= BUDGET {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Runs one benchmark closure and prints its mean iteration time.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label}: no measurement (closure never called iter)");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!(
        "{label}: {ns_per_iter:.1} ns/iter ({} iters)",
        bencher.iters
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
