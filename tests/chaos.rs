//! Seeded chaos suite: the acceptance gate for fault-injected serving.
//!
//! A resilient [`EnviroClient`] must complete long continuous queries over
//! a wire that drops, duplicates, reorders and bit-corrupts frames — with
//! **zero wrong answers** (every `Fresh` value bit-identical to a
//! fault-free run), bounded retries, and no hangs. All time is virtual
//! (shared [`VirtualClock`]), so the suite never sleeps, and every fault
//! schedule is seeded: two runs of the same case are identical, stats and
//! all.
//!
//! Reproduction knobs:
//! * `CHAOS_SEED=<u64>`  — replay the whole suite under a different seed
//!   (decimal, or hex with an `0x` prefix).
//! * `CHAOS_VERBOSE=1`   — log every injected fault to stderr.
//!
//! Every assertion message carries the seed that produced the failure.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{
    Dataset, LausanneSim, Pollutant, QueryTuple, RawTuple, SimConfig, Timestamp, WindowSpec,
};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod, QueryOutcome};
use enviro_net::{
    BinaryCodec, ChaosWire, ConcurrentTransport, EnviroClient, EnviroServer, FaultPlan,
    IngestConfig, IngestReport, IngestState, LinkProfile, LoopbackWire, ModelMaintenance, Outage,
    ResilienceStats, RetryPolicy, SimulatedLink, TextCodec, VirtualClock, WireCodec,
};
use enviro_storage::{WalConfig, WalStore};
use std::sync::Arc;

/// Default suite seed; override with `CHAOS_SEED=<u64>`.
const DEFAULT_SEED: u64 = 0xC7A0_5C7A_0001;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(DEFAULT_SEED)
}

fn seed_is_pinned() -> bool {
    std::env::var("CHAOS_SEED").is_err()
}

fn verbose() -> bool {
    std::env::var("CHAOS_VERBOSE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn build_server<C: WireCodec>(codec: C) -> EnviroServer<C> {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 6 * 3_600,
        seed: 4242,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(2 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );
    EnviroServer::new(platform, codec, QueryMethod::ModelCover)
}

fn trajectory(n: usize, step_secs: i64, seed: u64) -> Vec<QueryTuple> {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 6 * 3_600,
        seed: 4242,
        ..SimConfig::default()
    });
    sim.continuous_trajectory(n, step_secs, seed)
}

/// The oracle: the same client stack and codec over a fault-free wire.
/// (The text codec is deliberately lossy in its decimal formatting, so the
/// ground truth must pass through the same codec as the chaos run.)
fn oracle_values<C: WireCodec + Copy>(
    server: &EnviroServer<C>,
    codec: C,
    traj: &[QueryTuple],
    batch: usize,
) -> Vec<Option<f64>> {
    let mut client = EnviroClient::new(codec, server.platform().engine().dataset().pollutant())
        .with_batch(batch);
    let mut link = SimulatedLink::new(LinkProfile::IDEAL);
    let mut wire = LoopbackWire::new(server, &mut link);
    let mut values = Vec::new();
    client.query_batch(&mut wire, traj, &mut values).unwrap();
    values
}

/// Counts `Fresh` outcomes whose value is not bit-identical to the oracle,
/// plus the non-fresh tally — the "zero wrong answers" bookkeeping.
fn audit(outcomes: &[QueryOutcome], oracle: &[Option<f64>]) -> (usize, usize) {
    assert_eq!(outcomes.len(), oracle.len());
    let mut wrong = 0;
    let mut not_fresh = 0;
    for (got, want) in outcomes.iter().zip(oracle) {
        match got {
            QueryOutcome::Fresh(v) => {
                let matches = match (v, want) {
                    (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
                    (None, None) => true,
                    _ => false,
                };
                if !matches {
                    wrong += 1;
                }
            }
            _ => not_fresh += 1,
        }
    }
    (wrong, not_fresh)
}

/// One resilient run over `ChaosWire<Session>` against a concurrent
/// transport. Returns (outcomes, client stats, wire exchanges).
fn run_concurrent_chaos<C: WireCodec + Copy + Send + Sync + 'static>(
    server: Arc<EnviroServer<C>>,
    codec: C,
    traj: &[QueryTuple],
    plan: FaultPlan,
    seed: u64,
    batch: usize,
) -> (Vec<QueryOutcome>, ResilienceStats, usize) {
    let transport = ConcurrentTransport::spawn_shared(Arc::clone(&server), 2).unwrap();
    let clock = VirtualClock::new();
    let mut wire =
        ChaosWire::new(transport.session(), plan, seed, clock.clone()).with_trace(verbose());
    let mut client = EnviroClient::new(codec, server.platform().engine().dataset().pollutant())
        .with_batch(batch)
        .with_clock(clock)
        .with_rng_seed(seed ^ 0xD1CE);
    let mut outcomes = Vec::new();
    client.query_resilient(&mut wire, traj, &mut outcomes);
    let stats = client.resilience_stats();
    let exchanges = client.exchanges();
    drop(wire); // release the session before the transport joins
    (outcomes, stats, exchanges)
}

/// Same, over an in-process loopback wire.
fn run_loopback_chaos<C: WireCodec + Copy>(
    server: &EnviroServer<C>,
    codec: C,
    traj: &[QueryTuple],
    plan: FaultPlan,
    seed: u64,
    batch: usize,
) -> (Vec<QueryOutcome>, ResilienceStats, usize) {
    let clock = VirtualClock::new();
    let mut link = SimulatedLink::new(LinkProfile::IDEAL);
    let mut wire = ChaosWire::new(
        LoopbackWire::new(server, &mut link),
        plan,
        seed,
        clock.clone(),
    )
    .with_trace(verbose());
    let mut client = EnviroClient::new(codec, server.platform().engine().dataset().pollutant())
        .with_batch(batch)
        .with_clock(clock)
        .with_rng_seed(seed ^ 0xD1CE);
    let mut outcomes = Vec::new();
    client.query_resilient(&mut wire, traj, &mut outcomes);
    (outcomes, client.resilience_stats(), client.exchanges())
}

/// The ISSUE's acceptance criterion, verbatim: 10 000 continuous queries
/// over the concurrent transport under
/// `FaultPlan { drop: 0.10, corrupt: 0.05, duplicate: 0.05 }` must
/// complete with zero wrong answers, bounded retries and no hangs — and
/// running it twice must produce identical outcomes and counters.
#[test]
fn acceptance_10k_queries_under_faults_with_zero_wrong_answers() {
    const TUPLES: usize = 10_000;
    const BATCH: usize = 64;
    let seed = chaos_seed();
    eprintln!("chaos acceptance: seed={seed} (override with CHAOS_SEED=<u64>)");

    let server = Arc::new(build_server(BinaryCodec));
    let traj = trajectory(TUPLES, 2, 1);
    let oracle = oracle_values(&server, BinaryCodec, &traj, BATCH);
    let plan = FaultPlan {
        drop: 0.10,
        corrupt: 0.05,
        duplicate: 0.05,
        ..FaultPlan::default()
    };

    let (outcomes, stats, exchanges) = run_concurrent_chaos(
        Arc::clone(&server),
        BinaryCodec,
        &traj,
        plan.clone(),
        seed,
        BATCH,
    );

    assert_eq!(outcomes.len(), TUPLES, "seed {seed}: answers missing");
    let (wrong, not_fresh) = audit(&outcomes, &oracle);
    assert_eq!(
        wrong, 0,
        "seed {seed}: {wrong} wrong answers, stats {stats:?}"
    );
    // Retries are bounded: at most 1 + max_retries sends per chunk.
    let chunks = TUPLES.div_ceil(BATCH);
    let cap = chunks * (1 + RetryPolicy::default().max_retries as usize);
    assert!(
        exchanges <= cap,
        "seed {seed}: {exchanges} exchanges exceed the {cap} retry budget"
    );
    // The plan really fired: the run survived actual faults, not luck.
    assert!(stats.timeouts > 0, "seed {seed}: no drops materialized");
    assert!(
        stats.corrupt_replies > 0,
        "seed {seed}: no corruption materialized"
    );
    assert!(
        stats.stale_replies > 0,
        "seed {seed}: no duplicates materialized"
    );
    if seed_is_pinned() {
        // The pinned seed is known to leave no chunk unanswered.
        assert_eq!(
            not_fresh, 0,
            "seed {seed}: {not_fresh} tuples not answered fresh, stats {stats:?}"
        );
    }

    // Determinism: an identical second run, counter for counter.
    let (outcomes2, stats2, exchanges2) =
        run_concurrent_chaos(server, BinaryCodec, &traj, plan, seed, BATCH);
    assert_eq!(outcomes, outcomes2, "seed {seed}: outcomes diverged");
    assert_eq!(stats, stats2, "seed {seed}: stats diverged");
    assert_eq!(
        exchanges2, exchanges,
        "seed {seed}: exchange counts diverged"
    );
}

/// The fault-rate matrix: {2%, 8%} base rates × {loopback, concurrent} ×
/// {binary, text}. Every cell must finish with zero wrong answers.
#[test]
fn chaos_matrix_over_wires_codecs_and_rates() {
    const TUPLES: usize = 2_500;
    const BATCH: usize = 32;
    let seed = chaos_seed();
    let traj = trajectory(TUPLES, 8, 2);

    fn plan_for(rate: f64) -> FaultPlan {
        FaultPlan {
            drop: rate,
            duplicate: rate / 2.0,
            corrupt: rate / 2.0,
            reorder: rate / 4.0,
            stall: rate / 4.0,
            delay: rate,
            ..FaultPlan::default()
        }
    }

    fn cell<C: WireCodec + Copy + Send + Sync + 'static>(
        server: &Arc<EnviroServer<C>>,
        codec: C,
        oracle: &[Option<f64>],
        traj: &[QueryTuple],
        rate: f64,
        concurrent: bool,
        seed: u64,
    ) {
        let label = format!(
            "seed {seed} rate {rate} wire {} codec {}",
            if concurrent { "concurrent" } else { "loopback" },
            std::any::type_name::<C>()
        );
        let plan = plan_for(rate);
        let (outcomes, stats, _) = if concurrent {
            run_concurrent_chaos(Arc::clone(server), codec, traj, plan, seed, BATCH)
        } else {
            run_loopback_chaos(server, codec, traj, plan, seed, BATCH)
        };
        let (wrong, not_fresh) = audit(&outcomes, oracle);
        assert_eq!(wrong, 0, "{label}: {wrong} wrong answers, stats {stats:?}");
        // Even at 8% the retry budget must hold comfortably: allow up to
        // two exhausted chunks' worth of tuples, never a wholesale failure.
        assert!(
            not_fresh <= 2 * BATCH,
            "{label}: {not_fresh} tuples unanswered, stats {stats:?}"
        );
    }

    let binary = Arc::new(build_server(BinaryCodec));
    let text = Arc::new(build_server(TextCodec));
    let binary_oracle = oracle_values(&binary, BinaryCodec, &traj, BATCH);
    let text_oracle = oracle_values(&text, TextCodec, &traj, BATCH);

    for (i, &rate) in [0.02, 0.08].iter().enumerate() {
        let case_seed = seed ^ ((i as u64 + 1) << 32);
        for concurrent in [false, true] {
            cell(
                &binary,
                BinaryCodec,
                &binary_oracle,
                &traj,
                rate,
                concurrent,
                case_seed,
            );
            cell(
                &text,
                TextCodec,
                &text_oracle,
                &traj,
                rate,
                concurrent,
                case_seed,
            );
        }
    }
}

/// Model-cache mode rides through a scripted outage: queries keep being
/// answered (degrading to `Stale` from the expired cover, never
/// `Unavailable`), and once the outage lifts the client reconnects and
/// serves `Fresh` again. Corruption faults are excluded — `Cover` frames
/// carry no CRC (only batch frames do), so a flipped coefficient could
/// decode "successfully"; the batch path is where corruption is tested.
#[test]
fn model_cache_rides_through_an_outage() {
    let seed = chaos_seed();
    let server = build_server(BinaryCodec);
    // Pinned query times, one every 120 s of data time: crosses the 2 h
    // window boundaries at tuples 60 and 120.
    let base = trajectory(170, 120, 3);
    let traj: Vec<QueryTuple> = base
        .iter()
        .enumerate()
        .map(|(i, q)| QueryTuple::new(Timestamp::from_secs(i as i64 * 120), q.pos))
        .collect();
    let oracle = {
        let mut client = EnviroClient::new(
            BinaryCodec,
            server.platform().engine().dataset().pollutant(),
        )
        .with_model_cache(true);
        let mut link = SimulatedLink::new(LinkProfile::IDEAL);
        let mut wire = LoopbackWire::new(&server, &mut link);
        let mut values = Vec::new();
        client.query_batch(&mut wire, &traj, &mut values).unwrap();
        values
    };

    let clock = VirtualClock::new();
    let plan = FaultPlan {
        duplicate: 0.05,
        outages: vec![Outage {
            from_ms: 1_000,
            until_ms: 4_000,
        }],
        ..FaultPlan::default()
    };
    let mut link = SimulatedLink::new(LinkProfile::IDEAL);
    let mut wire = ChaosWire::new(
        LoopbackWire::new(&server, &mut link),
        plan,
        seed,
        clock.clone(),
    )
    .with_trace(verbose());
    let mut client = EnviroClient::new(
        BinaryCodec,
        server.platform().engine().dataset().pollutant(),
    )
    .with_model_cache(true)
    .with_clock(clock.clone())
    .with_rng_seed(seed ^ 0xD1CE);

    // One tuple per 50 ms of wall time, so the outage window [1 s, 4 s)
    // lands across the first cover-expiry refresh.
    let mut outcomes = Vec::with_capacity(traj.len());
    let mut one = Vec::new();
    for q in &traj {
        client.query_resilient(&mut wire, std::slice::from_ref(q), &mut one);
        outcomes.push(one[0]);
        clock.advance(50);
    }

    let stats = client.resilience_stats();
    assert_eq!(outcomes.len(), traj.len());
    assert!(
        outcomes.iter().all(|o| !o.is_unavailable()),
        "seed {seed}: outage must degrade, not fail: {stats:?}"
    );
    assert!(
        stats.stale_answers > 0,
        "seed {seed}: the outage never forced a stale answer: {stats:?}"
    );
    assert!(
        stats.timeouts > 0,
        "seed {seed}: the outage never bit a refresh: {stats:?}"
    );
    // Every Fresh answer matches the fault-free model-cache run exactly.
    let (wrong, _) = audit(&outcomes, &oracle);
    assert_eq!(wrong, 0, "seed {seed}: {wrong} wrong fresh answers");
    // After the outage lifts, the client reconnects: the tail is fresh.
    assert!(
        outcomes.last().unwrap().is_fresh(),
        "seed {seed}: never reconnected; stats {stats:?}"
    );
}

/// A server whose queue is saturated sheds with `Busy`, and the resilient
/// client absorbs the sheds: it backs off by the server's hint, retries,
/// and once capacity returns still gets every answer right.
#[test]
fn client_rides_through_server_shedding() {
    use enviro_net::TransportConfig;
    const TUPLES: usize = 500;
    let seed = chaos_seed();
    let server = Arc::new(build_server(BinaryCodec));
    let traj = trajectory(TUPLES, 4, 5);
    let oracle = oracle_values(&server, BinaryCodec, &traj, 16);

    // One paused worker with a one-slot queue: a pre-loaded request keeps
    // the slot occupied, so the client's first sends are all shed. The
    // client's Busy backoff really sleeps (system clock); a timer thread
    // resumes the worker 25 ms in, well inside the retry budget.
    let transport = ConcurrentTransport::spawn_shared_with(
        Arc::clone(&server),
        TransportConfig {
            workers: 1,
            max_queue: 1,
            retry_after_ms: 5,
            start_paused: true,
        },
    )
    .unwrap();
    let mut blocker = transport.session();
    blocker
        .send_with(|out| {
            BinaryCodec.encode_request_into(
                &enviro_net::Request::ModelRequest {
                    time: Timestamp::from_secs(60),
                },
                out,
            )
        })
        .unwrap();

    std::thread::scope(|scope| {
        let transport_ref = &transport;
        scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(25));
            transport_ref.resume_workers();
        });

        let mut session = transport.session();
        let mut client = EnviroClient::new(BinaryCodec, enviro_data::Pollutant::Co2)
            .with_batch(16)
            .with_retry_policy(RetryPolicy {
                deadline_ms: 10_000,
                max_retries: 100,
                ..RetryPolicy::default()
            })
            .with_rng_seed(seed);
        let mut outcomes = Vec::new();
        client.query_resilient(&mut session, &traj, &mut outcomes);

        let stats = client.resilience_stats();
        let (wrong, not_fresh) = audit(&outcomes, &oracle);
        assert_eq!(
            wrong, 0,
            "seed {seed}: {wrong} wrong answers under shedding"
        );
        assert_eq!(
            not_fresh, 0,
            "seed {seed}: shedding must delay, not lose: {stats:?}"
        );
        assert!(
            stats.busy_replies > 0,
            "seed {seed}: the saturated queue never shed: {stats:?}"
        );
        assert_eq!(stats.busy_replies, stats.retries, "{stats:?}");
    });
    assert!(transport.shed_total() > 0);
    let _ = blocker.recv(); // drain the pre-loaded request's reply
}

// ------------------------------------------------ durable write path chaos

/// A deterministic stream of distinct, finite tuples for ingest tests.
fn ingest_tuples(n: usize, start_secs: i64) -> Vec<RawTuple> {
    (0..n)
        .map(|i| {
            RawTuple::new(
                Timestamp::from_secs(start_secs + i as i64 * 2),
                Point::new(
                    (i % 97) as f64 * 40.0 - 2_000.0,
                    (i % 61) as f64 * 50.0 - 1_500.0,
                ),
                400.0 + (i % 37) as f64 * 3.0,
            )
        })
        .collect()
}

fn chaos_temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("enviro-chaos-{tag}-{}", std::process::id()))
}

/// Bit-exact identity key for a stored tuple.
fn tuple_key(t: &RawTuple) -> (i64, u64, u64, u64) {
    (
        t.time.as_secs(),
        t.pos.x.to_bits(),
        t.pos.y.to_bits(),
        t.value.to_bits(),
    )
}

const INGEST_WINDOW_SECS: i64 = 3_600;

/// One chaos ingest run into a fresh WAL at `dir`.
fn run_ingest_chaos(
    dir: &std::path::Path,
    tuples: &[RawTuple],
    plan: FaultPlan,
    seed: u64,
) -> (IngestReport, ResilienceStats, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let state = Arc::new(
        IngestState::open(
            dir,
            WalConfig {
                window_secs: INGEST_WINDOW_SECS,
                ..WalConfig::default()
            },
            IngestConfig::default(),
        )
        .unwrap(),
    );
    let server = Arc::new(build_server(BinaryCodec).with_ingest(Arc::clone(&state)));
    let transport = ConcurrentTransport::spawn_shared(Arc::clone(&server), 2).unwrap();
    let clock = VirtualClock::new();
    let mut wire =
        ChaosWire::new(transport.session(), plan, seed, clock.clone()).with_trace(verbose());
    let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2)
        .with_batch(64)
        .with_clock(clock)
        .with_rng_seed(seed ^ 0x1A6E);
    let report = client.ingest_resilient(&mut wire, 0xFEED, tuples);
    let stats = client.resilience_stats();
    drop(wire); // release the session before the transport joins
    state.check_invariants().unwrap();
    let durable = state.stats().durable_tuples;
    (report, stats, durable)
}

/// The durable-write acceptance criterion: 10 000 tuples streamed as
/// `IngestBatch` frames under `{drop: 0.10, corrupt: 0.05, dup: 0.05}`
/// must lose **zero acked tuples** — every tuple of every acknowledged
/// chunk is found in the WAL after a cold reopen (crash-equivalent), with
/// no duplicate appends despite the retransmits — and a second identical
/// run must be bit-identical, report and counters included.
#[test]
fn acceptance_10k_ingested_tuples_under_faults_lose_nothing() {
    const TUPLES: usize = 10_000;
    const BATCH: usize = 64;
    let seed = chaos_seed();
    eprintln!("chaos ingest: seed={seed} (override with CHAOS_SEED=<u64>)");

    let tuples = ingest_tuples(TUPLES, 0);
    let plan = FaultPlan {
        drop: 0.10,
        corrupt: 0.05,
        duplicate: 0.05,
        ..FaultPlan::default()
    };
    let dir = chaos_temp_dir("ingest-a");
    let (report, stats, durable) = run_ingest_chaos(&dir, &tuples, plan.clone(), seed);

    assert_eq!(
        report.acked_tuples + report.failed_tuples,
        TUPLES as u64,
        "seed {seed}: tuples unaccounted for"
    );
    // Exactly-once despite retransmits: the server never appends a chunk
    // twice, so the durable count can exceed the acked count only by
    // chunks whose ack was lost — never by duplicates.
    assert!(
        durable >= report.acked_tuples && durable <= TUPLES as u64,
        "seed {seed}: durable {durable} vs acked {} — dedup broke",
        report.acked_tuples
    );
    // The plan really fired.
    assert!(stats.timeouts > 0, "seed {seed}: no drops materialized");
    assert!(
        stats.corrupt_replies > 0 || stats.retries > 0,
        "seed {seed}: no corruption materialized: {stats:?}"
    );

    // Zero lost acked tuples, by cold-reopen audit: replay the WAL from
    // disk exactly as crash recovery would and check membership of every
    // tuple in every acknowledged chunk.
    let wal = WalStore::open(
        &dir,
        WalConfig {
            window_secs: INGEST_WINDOW_SECS,
            ..WalConfig::default()
        },
    )
    .unwrap();
    let stored: std::collections::HashSet<_> = wal
        .memtables()
        .flat_map(|(_, mem)| mem.tuples().iter().map(tuple_key))
        .collect();
    assert_eq!(
        stored.len() as u64,
        durable,
        "seed {seed}: reopen lost durable tuples"
    );
    let mut lost = 0usize;
    for (i, chunk) in tuples.chunks(BATCH).enumerate() {
        if report.chunk_acked[i] {
            lost += chunk
                .iter()
                .filter(|t| !stored.contains(&tuple_key(t)))
                .count();
        }
    }
    assert_eq!(lost, 0, "seed {seed}: {lost} acked tuples missing from WAL");

    // Determinism: a second run into a fresh WAL, counter for counter.
    let dir2 = chaos_temp_dir("ingest-b");
    let (report2, stats2, durable2) = run_ingest_chaos(&dir2, &tuples, plan, seed);
    assert_eq!(report, report2, "seed {seed}: ingest reports diverged");
    assert_eq!(stats, stats2, "seed {seed}: stats diverged");
    assert_eq!(durable, durable2, "seed {seed}: durable counts diverged");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// Streamed-vs-batch parity: ingesting the simulation's dataset through
/// the wire and publishing covers online must answer queries **bit
/// identically** to the batch platform built from the same dataset in one
/// shot — same windows, same Ad-KMN covers, same interpolation.
#[test]
fn queries_under_ingest_match_the_batch_platform_bit_for_bit() {
    let seed = chaos_seed();
    let dir = chaos_temp_dir("parity");
    let _ = std::fs::remove_dir_all(&dir);

    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 6 * 3_600,
        seed: 4242,
        ..SimConfig::default()
    });
    let tuples = sim.generate().tuples().to_vec();
    let batch_server = build_server(BinaryCodec);

    let state = Arc::new(
        IngestState::open(
            &dir,
            WalConfig {
                window_secs: 2 * 3_600,
                ..WalConfig::default()
            },
            IngestConfig::default(),
        )
        .unwrap(),
    );
    // An ingest-only endpoint: its static platform is empty, so every
    // answer comes from the stream's published covers.
    let ingest_server = EnviroServer::new(
        EnviroMeter::new(
            Dataset::new(Pollutant::Co2),
            WindowSpec::ByDuration(2 * 3_600),
            AdKmnConfig::default(),
            1_000.0,
        ),
        BinaryCodec,
        QueryMethod::ModelCover,
    )
    .with_ingest(Arc::clone(&state));

    // Stream in dataset order (the windows see the same tuple sequence the
    // batch engine does), then publish.
    let mut link = SimulatedLink::new(LinkProfile::IDEAL);
    let mut wire = LoopbackWire::new(&ingest_server, &mut link);
    let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(64);
    let report = client.ingest_resilient(&mut wire, 7, &tuples);
    assert_eq!(report.acked_tuples, tuples.len() as u64, "seed {seed}");
    state.rebuild_dirty_now().unwrap();
    assert!(state.generation() > 0);

    let traj = trajectory(2_000, 8, 9);
    let want = oracle_values(&batch_server, BinaryCodec, &traj, 64);
    let got = oracle_values(&ingest_server, BinaryCodec, &traj, 64);
    let mut wrong = 0usize;
    for (a, b) in got.iter().zip(&want) {
        let same = match (a, b) {
            (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
            (None, None) => true,
            _ => false,
        };
        if !same {
            wrong += 1;
        }
    }
    assert_eq!(
        wrong,
        0,
        "seed {seed}: {wrong}/{} streamed answers differ from the batch platform",
        traj.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Queries never block on a rebuild: while the maintenance worker is
/// paused mid-“rebuild” with a dirty window queued, the server keeps
/// answering from the previously published covers; resuming publishes the
/// new window in the background with no query-thread involvement.
#[test]
fn queries_keep_serving_while_a_rebuild_is_pending() {
    let dir = chaos_temp_dir("pending-rebuild");
    let _ = std::fs::remove_dir_all(&dir);
    let state = Arc::new(
        IngestState::open(
            &dir,
            WalConfig {
                window_secs: INGEST_WINDOW_SECS,
                ..WalConfig::default()
            },
            IngestConfig::default(),
        )
        .unwrap(),
    );
    let server = EnviroServer::new(
        EnviroMeter::new(
            Dataset::new(Pollutant::Co2),
            WindowSpec::ByDuration(INGEST_WINDOW_SECS),
            AdKmnConfig::default(),
            1_000.0,
        ),
        BinaryCodec,
        QueryMethod::ModelCover,
    )
    .with_ingest(Arc::clone(&state));

    // Window 0 ingested and published synchronously.
    let w0 = ingest_tuples(200, 0);
    let mut link = SimulatedLink::new(LinkProfile::IDEAL);
    let mut wire = LoopbackWire::new(&server, &mut link);
    let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(64);
    assert_eq!(client.ingest_resilient(&mut wire, 1, &w0).failed_tuples, 0);
    state.rebuild_dirty_now().unwrap();
    let gen1 = state.generation();
    assert!(gen1 > 0);

    // Hold the worker's rebuild gate (an arbitrarily long Ad-KMN rebuild),
    // then hand it a dirty window.
    state.pause_rebuilds();
    let maintenance = ModelMaintenance::spawn(Arc::clone(&state)).unwrap();
    let w1 = ingest_tuples(200, INGEST_WINDOW_SECS);
    assert_eq!(client.ingest_resilient(&mut wire, 1, &w1).failed_tuples, 0);

    // While the rebuild is pending, every query is still answered from the
    // generation-1 covers — the hot path shares nothing with the rebuild.
    let probe = |wire: &mut LoopbackWire<BinaryCodec>, client: &mut EnviroClient<BinaryCodec>| {
        let queries: Vec<QueryTuple> = w0
            .iter()
            .step_by(20)
            .map(|t| QueryTuple::new(t.time, t.pos))
            .collect();
        let mut values = Vec::new();
        client.query_batch(wire, &queries, &mut values).unwrap();
        values
    };
    let before = probe(&mut wire, &mut client);
    assert!(
        before.iter().all(Option::is_some),
        "queries starved while a rebuild was pending"
    );
    assert_eq!(state.generation(), gen1, "publication must be deferred");

    // Release the gate: the background worker publishes on its own.
    state.resume_rebuilds();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while state.generation() == gen1 {
        assert!(
            std::time::Instant::now() < deadline,
            "maintenance worker never published"
        );
        std::thread::yield_now();
    }
    // The new window answers, the old one still does (bit-identically).
    assert_eq!(probe(&mut wire, &mut client), before);
    let q1 = QueryTuple::new(w1[0].time, w1[0].pos);
    let mut values = Vec::new();
    client
        .query_batch(&mut wire, std::slice::from_ref(&q1), &mut values)
        .unwrap();
    assert!(values[0].is_some(), "newly published window must answer");

    drop(maintenance);
    let _ = std::fs::remove_dir_all(&dir);
}
