//! Cross-crate integration: simulator → dataset → platform → every query
//! surface the demo exposes (point, continuous, heatmap, route).

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, QueryTuple, SimConfig, Timestamp, WindowSpec};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod, SplitStrategy};

fn platform_and_sim(seed: u64) -> (EnviroMeter, LausanneSim) {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 86_400,
        seed,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );
    (platform, sim)
}

#[test]
fn model_cover_tracks_ground_truth_on_corridors() {
    let (platform, sim) = platform_and_sim(1);
    let queries = sim.query_workload(300, 25.0, 10);
    let mut total_abs = 0.0;
    for q in &queries {
        let pred = platform
            .point_query(q, QueryMethod::ModelCover)
            .expect("cover answers everywhere");
        let truth = sim.true_value(q.time, &q.pos);
        total_abs += (pred - truth).abs();
    }
    let mae = total_abs / queries.len() as f64;
    // Sensor noise alone is sigma = 15 ppm; a good cover should stay within
    // a few noise widths on-corridor.
    assert!(mae < 45.0, "on-corridor MAE {mae} ppm");
}

#[test]
fn raw_data_methods_agree_exactly() {
    let (platform, sim) = platform_and_sim(2);
    for q in sim.query_workload(100, 300.0, 11) {
        let naive = platform.point_query(&q, QueryMethod::Naive);
        for m in [QueryMethod::RTree, QueryMethod::VpTree, QueryMethod::Grid] {
            let got = platform.point_query(&q, m);
            match (naive, got) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "{m}: {a} vs {b}")
                }
                other => panic!("{m}: {other:?}"),
            }
        }
    }
}

#[test]
fn continuous_query_is_consistent_with_point_queries() {
    let (platform, sim) = platform_and_sim(3);
    let traj = sim.continuous_trajectory(50, 60, 12);
    let bulk = platform.continuous_query(&traj, QueryMethod::ModelCover);
    for (q, bulk_v) in traj.iter().zip(&bulk) {
        let single = platform.point_query(q, QueryMethod::ModelCover);
        assert_eq!(&single, bulk_v);
    }
}

#[test]
fn heatmap_reflects_diurnal_cycle() {
    let (platform, _) = platform_and_sim(4);
    let rush = platform.heatmap(Timestamp::from_hours(8), 32, 32).unwrap();
    let night = platform.heatmap(Timestamp::from_hours(3), 32, 32).unwrap();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&rush.values) > mean(&night.values) + 10.0,
        "rush {:.1} vs night {:.1}",
        mean(&rush.values),
        mean(&night.values)
    );
}

#[test]
fn route_summary_classifies_urban_air_as_safe() {
    // Simulated Lausanne CO2 peaks well below the OSHA 8-hour limit, so a
    // recorded commute must classify as safe/moderate, never hazardous.
    let (platform, sim) = platform_and_sim(5);
    let traj = sim.continuous_trajectory(40, 60, 13);
    let route = platform.record_route(&traj, QueryMethod::ModelCover);
    let summary = route.summary();
    let level = summary.level.expect("route has data");
    assert!(level <= enviro_data::SafetyLevel::Moderate, "level {level}");
}

#[test]
fn covers_expire_at_window_boundaries() {
    let (platform, _) = platform_and_sim(6);
    let in_first = platform.cover_at(Timestamp::from_hours(1)).unwrap();
    assert!(in_first.is_valid_at(Timestamp::from_hours(3)));
    assert!(!in_first.is_valid_at(Timestamp::from_hours(5)));
    let in_second = platform.cover_at(Timestamp::from_hours(5)).unwrap();
    assert_ne!(in_first.window_id, in_second.window_id);
}

#[test]
fn every_split_strategy_produces_a_working_platform() {
    for split in [
        SplitStrategy::WorstErrorPoint,
        SplitStrategy::RandomPoint,
        SplitStrategy::CentroidJitter,
    ] {
        let sim = LausanneSim::lausanne(SimConfig {
            duration_secs: 4 * 3_600,
            seed: 7,
            ..SimConfig::default()
        });
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(2 * 3_600),
            AdKmnConfig {
                split,
                ..AdKmnConfig::default()
            },
            1_000.0,
        );
        let q = QueryTuple::new(Timestamp::from_hours(1), Point::new(0.0, -200.0));
        let v = platform
            .point_query(&q, QueryMethod::ModelCover)
            .expect("cover answers");
        assert!((200.0..2_000.0).contains(&v), "{split:?}: {v}");
    }
}

#[test]
fn query_before_first_sample_uses_first_window() {
    let (platform, _) = platform_and_sim(8);
    let q = QueryTuple::new(Timestamp::from_secs(-3_600), Point::new(0.0, -200.0));
    assert!(platform.point_query(&q, QueryMethod::ModelCover).is_some());
}

#[test]
fn engine_serves_concurrent_queries() {
    // The OnceLock-based caches must be safe under concurrent first-touch:
    // many threads query all methods across all windows simultaneously.
    let (platform, sim) = platform_and_sim(20);
    let platform = std::sync::Arc::new(platform);
    let queries = std::sync::Arc::new(sim.query_workload(200, 300.0, 21));
    let mut handles = Vec::new();
    for k in 0..8 {
        let platform = std::sync::Arc::clone(&platform);
        let queries = std::sync::Arc::clone(&queries);
        handles.push(std::thread::spawn(move || {
            for (i, q) in queries.iter().enumerate() {
                let method = QueryMethod::ALL[(i + k) % QueryMethod::ALL.len()];
                if let Some(v) = platform.point_query(q, method) {
                    assert!(v.is_finite());
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
    // Spot-check determinism after the concurrent warm-up.
    let q = &queries[0];
    let a = platform.point_query(q, QueryMethod::ModelCover);
    let b = platform.point_query(q, QueryMethod::ModelCover);
    assert_eq!(a, b);
}

#[test]
fn multi_pollutant_platforms_work() {
    use enviro_data::Pollutant;
    for pollutant in [Pollutant::Co, Pollutant::Pm25] {
        let sim = LausanneSim::lausanne_for(
            pollutant,
            SimConfig {
                duration_secs: 6 * 3_600,
                seed: 23,
                ..SimConfig::default()
            },
        );
        let platform = EnviroMeter::new(
            sim.generate(),
            WindowSpec::ByDuration(2 * 3_600),
            AdKmnConfig::default(),
            1_000.0,
        );
        let q = QueryTuple::new(Timestamp::from_hours(2), Point::new(0.0, -200.0));
        let v = platform
            .point_query(&q, QueryMethod::ModelCover)
            .expect("cover answers");
        let (lo, hi) = pollutant.normal_range();
        assert!(
            v > lo - (hi - lo) * 0.25 && v < hi + (hi - lo) * 0.25,
            "{pollutant}: {v}"
        );
    }
}

#[test]
fn dataset_csv_roundtrip_preserves_query_answers() {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 6 * 3_600,
        seed: 9,
        ..SimConfig::default()
    });
    let dataset = sim.generate();
    let mut buf = Vec::new();
    enviro_data::csv::write_csv(&dataset, &mut buf).unwrap();
    let reloaded = enviro_data::csv::read_csv(dataset.pollutant(), buf.as_slice()).unwrap();

    let p1 = EnviroMeter::new(
        dataset,
        WindowSpec::ByCount(240),
        AdKmnConfig::default(),
        1_000.0,
    );
    let p2 = EnviroMeter::new(
        reloaded,
        WindowSpec::ByCount(240),
        AdKmnConfig::default(),
        1_000.0,
    );
    for q in sim.query_workload(50, 200.0, 14) {
        assert_eq!(
            p1.point_query(&q, QueryMethod::ModelCover),
            p2.point_query(&q, QueryMethod::ModelCover)
        );
    }
}
