//! Concurrency stress: many client sessions hammering one shared server
//! must produce answers bit-identical to sequential in-process calls.
//!
//! This is the correctness half of the throughput story: the concurrent
//! transport shares one `EnviroServer` across worker threads with no locks
//! on the query path, so any data race or cross-session reply mixup would
//! show up here as a value mismatch.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, Pollutant, QueryTuple, SimConfig, WindowSpec};
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BinaryCodec, ConcurrentTransport, EnviroClient, EnviroServer, Request, Response, WireCodec,
};
use std::sync::Arc;

const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 200;

fn shared_server() -> Arc<EnviroServer<BinaryCodec>> {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 6 * 3_600,
        seed: 4242,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(2 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );
    Arc::new(EnviroServer::new(
        platform,
        BinaryCodec,
        QueryMethod::ModelCover,
    ))
}

/// Client `k`'s trajectory: distinct per client so a reply delivered to the
/// wrong session cannot accidentally carry the right value.
fn trajectory(k: usize) -> Vec<QueryTuple> {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 6 * 3_600,
        seed: 4242,
        ..SimConfig::default()
    });
    sim.continuous_trajectory(QUERIES_PER_CLIENT, 90, k as u64 + 1)
}

/// The ground truth: answer `traj` sequentially, straight through
/// `handle()`, no wire, no threads.
fn sequential_answers(server: &EnviroServer<BinaryCodec>, traj: &[QueryTuple]) -> Vec<Option<f64>> {
    traj.iter()
        .map(|q| {
            match server.handle(&Request::Query {
                time: q.time,
                pos: q.pos,
            }) {
                Response::Value { value } => Some(value),
                Response::NoData => None,
                other => panic!("unexpected response {other:?}"),
            }
        })
        .collect()
}

fn assert_bit_identical(expected: &[Option<f64>], got: &[Option<f64>], who: &str) {
    assert_eq!(expected.len(), got.len(), "{who}: length mismatch");
    for (i, (e, g)) in expected.iter().zip(got).enumerate() {
        match (e, g) {
            (Some(e), Some(g)) => assert_eq!(
                e.to_bits(),
                g.to_bits(),
                "{who}: tuple {i} differs: {e} vs {g}"
            ),
            (None, None) => {}
            other => panic!("{who}: tuple {i} differs: {other:?}"),
        }
    }
}

#[test]
fn concurrent_sessions_match_sequential_bit_for_bit() {
    let server = shared_server();
    let expected: Vec<Vec<Option<f64>>> = (0..CLIENTS)
        .map(|k| sequential_answers(&server, &trajectory(k)))
        .collect();

    let transport = ConcurrentTransport::spawn_shared(Arc::clone(&server), 4).unwrap();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for k in 0..CLIENTS {
            let transport = &transport;
            handles.push(scope.spawn(move || {
                let traj = trajectory(k);
                let mut session = transport.session();
                // Odd clients batch, even clients send per-tuple frames, so
                // both frame kinds interleave on the same worker queues.
                if k % 2 == 1 {
                    let mut client =
                        EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(16 + k);
                    let mut values = Vec::new();
                    client
                        .query_batch(&mut session, &traj, &mut values)
                        .unwrap();
                    values
                } else {
                    traj.iter()
                        .map(|q| {
                            let reply = session
                                .call_with(|out| {
                                    BinaryCodec.encode_request_into(
                                        &Request::Query {
                                            time: q.time,
                                            pos: q.pos,
                                        },
                                        out,
                                    )
                                })
                                .unwrap();
                            match BinaryCodec.decode_response(reply).unwrap() {
                                Response::Value { value } => Some(value),
                                Response::NoData => None,
                                other => panic!("unexpected response {other:?}"),
                            }
                        })
                        .collect()
                }
            }));
        }
        for (k, handle) in handles.into_iter().enumerate() {
            let got: Vec<Option<f64>> = handle.join().unwrap();
            assert_bit_identical(&expected[k], &got, &format!("client {k}"));
        }
    });
}

#[test]
fn garbage_frames_mid_stream_do_not_poison_other_sessions() {
    let server = shared_server();
    let transport = ConcurrentTransport::spawn_shared(Arc::clone(&server), 2).unwrap();
    let traj = trajectory(0);
    let expected = sequential_answers(&server, &traj);

    std::thread::scope(|scope| {
        // A vandal session interleaving garbage with valid traffic.
        let vandal = {
            let transport = &transport;
            scope.spawn(move || {
                let mut session = transport.session();
                for i in 0..100u8 {
                    let reply = session
                        .call_with(|out| out.extend_from_slice(&[0xFF, i, 0xEE]))
                        .unwrap();
                    assert!(matches!(
                        BinaryCodec.decode_response(reply).unwrap(),
                        Response::Error(_)
                    ));
                }
            })
        };
        // A well-behaved batched client running alongside.
        let honest = {
            let transport = &transport;
            let traj = &traj;
            scope.spawn(move || {
                let mut session = transport.session();
                let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(32);
                let mut values = Vec::new();
                client.query_batch(&mut session, traj, &mut values).unwrap();
                assert_eq!(client.protocol_errors(), 0);
                values
            })
        };
        vandal.join().unwrap();
        let got = honest.join().unwrap();
        assert_bit_identical(&expected, &got, "honest client");
    });
}

#[test]
fn pipelined_batches_round_trip_under_contention() {
    let server = shared_server();
    let transport = ConcurrentTransport::spawn_shared(Arc::clone(&server), 4).unwrap();
    let traj = trajectory(2);
    let expected = sequential_answers(&server, &traj);

    // Pipeline all batch frames first, then drain replies in order —
    // exercising the queue depth rather than lock-step call/reply.
    let mut session = transport.session();
    let chunks: Vec<&[QueryTuple]> = traj.chunks(25).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        session
            .send_with(|out| {
                BinaryCodec.encode_request_into(
                    &Request::QueryBatch {
                        seq: i as u32 + 1,
                        queries: chunk.to_vec(),
                    },
                    out,
                )
            })
            .unwrap();
    }
    let mut got = Vec::with_capacity(traj.len());
    for (i, chunk) in chunks.iter().enumerate() {
        let reply = session.recv().unwrap();
        match BinaryCodec.decode_response(reply).unwrap() {
            Response::ValueBatch { seq, values, .. } => {
                // In-order pipelining: reply N carries request N's seq.
                assert_eq!(seq, i as u32 + 1);
                assert_eq!(values.len(), chunk.len());
                got.extend_from_slice(&values);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_bit_identical(&expected, &got, "pipelined batches");
}

#[test]
fn corrupt_frame_mid_pipeline_is_isolated_to_its_own_reply() {
    let server = shared_server();
    let transport = ConcurrentTransport::spawn_shared(Arc::clone(&server), 2).unwrap();
    let traj = trajectory(1);
    let expected = sequential_answers(&server, &traj);

    // Three pipelined batch frames; the middle one gets a bit flipped after
    // encoding, so its CRC check must fail server-side. The corruption must
    // produce exactly one Error reply, in order, with both neighbors served.
    let mut session = transport.session();
    let chunks: Vec<&[QueryTuple]> = traj.chunks(traj.len().div_ceil(3)).collect();
    assert_eq!(chunks.len(), 3);
    for (i, chunk) in chunks.iter().enumerate() {
        session
            .send_with(|out| {
                BinaryCodec.encode_request_into(
                    &Request::QueryBatch {
                        seq: i as u32 + 1,
                        queries: chunk.to_vec(),
                    },
                    out,
                );
                if i == 1 {
                    let mid = out.len() / 2;
                    out[mid] ^= 0x01;
                }
            })
            .unwrap();
    }
    let mut got: Vec<Option<f64>> = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        let reply = session.recv().unwrap();
        match BinaryCodec.decode_response(reply).unwrap() {
            Response::ValueBatch { seq, values, .. } => {
                assert_ne!(i, 1, "corrupted frame must not be answered");
                assert_eq!(seq, i as u32 + 1);
                assert_eq!(values.len(), chunk.len());
                got.extend_from_slice(&values);
            }
            Response::Error(_) => {
                assert_eq!(i, 1, "only the corrupted frame may error");
                // Placeholders so the audit below lines up positionally.
                got.extend(std::iter::repeat_n(None, chunk.len()));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let healthy = |v: &[Option<f64>]| {
        v.iter()
            .enumerate()
            .filter(|(i, _)| *i < chunks[0].len() || *i >= chunks[0].len() + chunks[1].len())
            .map(|(_, v)| *v)
            .collect::<Vec<_>>()
    };
    assert_bit_identical(&healthy(&expected), &healthy(&got), "neighbor frames");
}

#[test]
fn transport_shutdown_is_clean_after_heavy_traffic() {
    let server = shared_server();
    let transport = ConcurrentTransport::spawn_shared(server, 4).unwrap();
    std::thread::scope(|scope| {
        for k in 0..CLIENTS {
            let transport = &transport;
            scope.spawn(move || {
                let traj = trajectory(k);
                let mut session = transport.session();
                let mut client = EnviroClient::new(BinaryCodec, Pollutant::Co2).with_batch(8);
                let mut values = Vec::new();
                client
                    .query_batch(&mut session, &traj, &mut values)
                    .unwrap();
            });
        }
    });
    drop(transport); // must join all workers without hanging
}
