//! Cross-crate integration: the full mobile protocol — codec, link,
//! server, clients, thread transport — against a live platform.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, SimConfig, Timestamp, WindowSpec};
use enviro_geo::Point;
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BaselineClient, BinaryCodec, ChannelTransport, EnviroServer, LinkProfile, ModelCacheClient,
    Request, Response, SimulatedLink, TextCodec, WireCodec,
};

fn server<C: WireCodec>(codec: C, seed: u64) -> (EnviroServer<C>, LausanneSim) {
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 86_400,
        seed,
        ..SimConfig::default()
    });
    let platform = EnviroMeter::new(
        sim.generate(),
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );
    (
        EnviroServer::new(platform, codec, QueryMethod::ModelCover),
        sim,
    )
}

#[test]
fn cached_cover_answers_match_server_answers() {
    let (srv, sim) = server(BinaryCodec, 1);
    let traj = sim.continuous_trajectory(80, 60, 2);
    let mut l1 = SimulatedLink::new(LinkProfile::IDEAL);
    let base = BaselineClient::new(BinaryCodec)
        .run(&srv, &traj, &mut l1)
        .unwrap();
    let mut l2 = SimulatedLink::new(LinkProfile::IDEAL);
    let cache = ModelCacheClient::new(BinaryCodec)
        .run(&srv, &traj, &mut l2)
        .unwrap();
    for (i, (a, b)) in base.values.iter().zip(&cache.values).enumerate() {
        match (a, b) {
            (Some(x), Some(y)) => {
                assert!((x - y).abs() < 1e-9, "tuple {i}: server {x} vs cached {y}")
            }
            (None, None) => {}
            other => panic!("tuple {i}: {other:?}"),
        }
    }
}

#[test]
fn text_and_binary_codecs_give_identical_values() {
    let (bin_srv, sim) = server(BinaryCodec, 3);
    let (txt_srv, _) = server(TextCodec, 3);
    let traj = sim.continuous_trajectory(40, 60, 4);
    let mut l1 = SimulatedLink::new(LinkProfile::IDEAL);
    let bin = BaselineClient::new(BinaryCodec)
        .run(&bin_srv, &traj, &mut l1)
        .unwrap();
    let mut l2 = SimulatedLink::new(LinkProfile::IDEAL);
    let txt = BaselineClient::new(TextCodec)
        .run(&txt_srv, &traj, &mut l2)
        .unwrap();
    for (a, b) in bin.values.iter().zip(&txt.values) {
        match (a, b) {
            // Text codec prints 9 decimal places; equality up to that.
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6, "{x} vs {y}"),
            (None, None) => {}
            other => panic!("{other:?}"),
        }
    }
    // The text session must cost strictly more bytes for equal answers.
    assert!(txt.usage.sent_bytes > bin.usage.sent_bytes);
    assert!(txt.usage.received_bytes > bin.usage.received_bytes);
}

#[test]
fn model_cache_bandwidth_savings_hold_over_3g_too() {
    let (srv, sim) = server(BinaryCodec, 5);
    let traj = sim.continuous_trajectory(100, 60, 6);
    for profile in [LinkProfile::GPRS, LinkProfile::THREE_G] {
        let mut l1 = SimulatedLink::new(profile);
        let base = BaselineClient::new(BinaryCodec)
            .run(&srv, &traj, &mut l1)
            .unwrap();
        let mut l2 = SimulatedLink::new(profile);
        let cache = ModelCacheClient::new(BinaryCodec)
            .run(&srv, &traj, &mut l2)
            .unwrap();
        assert!(
            base.usage.sent_bytes > cache.usage.sent_bytes * 20,
            "{}: sent {} vs {}",
            profile.name,
            base.usage.sent_bytes,
            cache.usage.sent_bytes
        );
        assert!(
            base.elapsed_secs > cache.elapsed_secs * 20.0,
            "{}",
            profile.name
        );
    }
}

#[test]
fn thread_transport_serves_both_request_kinds() {
    let (srv, _) = server(BinaryCodec, 7);
    let transport = ChannelTransport::spawn(srv).unwrap();

    let q = BinaryCodec.encode_request(&Request::Query {
        time: Timestamp::from_hours(8),
        pos: Point::new(0.0, -200.0),
    });
    let resp = BinaryCodec
        .decode_response(&transport.call(q).unwrap())
        .unwrap();
    assert!(matches!(resp, Response::Value { .. }));

    let m = BinaryCodec.encode_request(&Request::ModelRequest {
        time: Timestamp::from_hours(8),
    });
    let resp = BinaryCodec
        .decode_response(&transport.call(m).unwrap())
        .unwrap();
    match resp {
        Response::Cover(cover) => assert!(!cover.is_empty()),
        other => panic!("expected cover, got {other:?}"),
    }
}

#[test]
fn reconstructed_cover_round_trips_through_both_codecs() {
    let (srv, _) = server(BinaryCodec, 8);
    let req = Request::ModelRequest {
        time: Timestamp::from_hours(2),
    };
    let resp = srv.handle(&req);
    let Response::Cover(wire) = resp else {
        panic!("expected cover");
    };
    for codec in [&BinaryCodec as &dyn WireCodec, &TextCodec as &dyn WireCodec] {
        let bytes = codec.encode_response(&Response::Cover(wire.clone()));
        let back = codec.decode_response(&bytes).unwrap();
        let Response::Cover(decoded) = back else {
            panic!("{}: expected cover", codec.name());
        };
        assert_eq!(decoded.len(), wire.len(), "{}", codec.name());
        // Every region must evaluate identically after the round trip
        // (text codec: up to print precision).
        let a = wire.clone().into_cover(enviro_data::Pollutant::Co2);
        let b = decoded.into_cover(enviro_data::Pollutant::Co2);
        let t = Timestamp::from_hours(2);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(-1_000.0, 500.0),
            Point::new(2_000.0, -1_000.0),
        ] {
            let va = a.interpolate(t, &p).unwrap();
            let vb = b.interpolate(t, &p).unwrap();
            assert!((va - vb).abs() < 1e-6, "{}: {va} vs {vb}", codec.name());
        }
    }
}
