//! The full deployment pipeline in one test file:
//! simulate → durable store → crash → recover → platform → server →
//! phone client over a lossy cellular link.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_data::{LausanneSim, Pollutant, SimConfig, WindowSpec};
use enviro_meter::{AdKmnConfig, EnviroMeter, QueryMethod};
use enviro_net::{
    BaselineClient, BinaryCodec, EnviroServer, LinkProfile, ModelCacheClient, SimulatedLink,
};
use enviro_storage::TupleStore;
use std::path::PathBuf;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("enviro-deploy-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sensing_to_phone_through_storage_and_crash() {
    let dir = tempdir("full");
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 12 * 3_600,
        seed: 99,
        ..SimConfig::default()
    });
    let dataset = sim.generate();

    // Ingestion node: stream the day into the store in hourly batches, with
    // small segments to force rotation.
    {
        let mut store = TupleStore::open_with_segment_size(&dir, 8_192).unwrap();
        let tuples = dataset.tuples();
        let mut offset = 0;
        while offset < tuples.len() {
            let end = (offset + 120).min(tuples.len());
            store.append(&tuples[offset..end]).unwrap();
            offset = end;
        }
        store.sync().unwrap();
        assert!(store.stats().segments > 1, "rotation must have happened");
    }

    // "Crash": tear the active segment's tail.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segs.sort();
    let last = segs.last().unwrap();
    let len = std::fs::metadata(last).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(last)
        .unwrap()
        .set_len(len - 7)
        .unwrap();

    // Recovery: reopen, losing at most the torn batch.
    let store = TupleStore::open_with_segment_size(&dir, 8_192).unwrap();
    let stats = store.stats();
    assert!(stats.recovered_torn_tail);
    assert!(
        stats.tuples > dataset.len() - 240,
        "lost too much: {stats:?}"
    );
    let recovered = store.load_dataset(Pollutant::Co2).unwrap();

    // Server over the recovered data; phone session over a lossy GPRS cell.
    let platform = EnviroMeter::new(
        recovered,
        WindowSpec::ByDuration(4 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );
    let server = EnviroServer::new(platform, BinaryCodec, QueryMethod::ModelCover);
    let trajectory = sim.continuous_trajectory(60, 60, 5);

    let mut base_link = SimulatedLink::with_seed(LinkProfile::GPRS.with_loss(0.1), 1);
    let baseline = BaselineClient::new(BinaryCodec)
        .run(&server, &trajectory, &mut base_link)
        .unwrap();
    let mut cache_link = SimulatedLink::with_seed(LinkProfile::GPRS.with_loss(0.1), 2);
    let cache = ModelCacheClient::new(BinaryCodec)
        .run(&server, &trajectory, &mut cache_link)
        .unwrap();

    // Both clients answer the whole trajectory with identical values.
    assert!(baseline.values.iter().all(Option::is_some));
    for (a, b) in baseline.values.iter().zip(&cache.values) {
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }
    // And caching still wins by a wide margin on the lossy link.
    assert!(baseline.elapsed_secs > cache.elapsed_secs * 10.0);
    assert!(baseline.usage.sent_bytes > cache.usage.sent_bytes * 10);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_engine_over_store_replay_matches_batch_platform() {
    use enviro_data::QueryTuple;
    use enviro_meter::{LiveConfig, LiveEngine};

    let dir = tempdir("replay");
    let sim = LausanneSim::lausanne(SimConfig {
        duration_secs: 8 * 3_600,
        seed: 77,
        ..SimConfig::default()
    });
    let dataset = sim.generate();
    {
        let mut store = TupleStore::open(&dir).unwrap();
        store.append(dataset.tuples()).unwrap();
        store.sync().unwrap();
    }
    let store = TupleStore::open(&dir).unwrap();
    let recovered = store.load_dataset(Pollutant::Co2).unwrap();

    // Live engine fed by replay (cold path, no warm start so results match
    // the batch engine exactly).
    let mut live = LiveEngine::new(LiveConfig {
        window_secs: 2 * 3_600,
        warm_start: false,
        ..LiveConfig::default()
    });
    live.ingest_batch(recovered.tuples());

    // Batch platform over the same data and windowing.
    let platform = EnviroMeter::new(
        recovered,
        WindowSpec::ByDuration(2 * 3_600),
        AdKmnConfig::default(),
        1_000.0,
    );

    for (i, q) in sim.query_workload(60, 200.0, 13).into_iter().enumerate() {
        let batch = platform.point_query(&q, QueryMethod::ModelCover);
        let streaming = live.query(&QueryTuple::new(q.time, q.pos));
        match (batch, streaming) {
            (Some(a), Some(b)) => {
                assert!((a - b).abs() < 1e-9, "query {i}: batch {a} vs live {b}")
            }
            other => panic!("query {i}: {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
