//! The paper's headline claims, asserted as tests at quick scale.
//!
//! These do not check absolute numbers (our substrate is a Rust simulator,
//! not the authors' Python testbed) — they check the *shape* of every
//! result panel: who wins, and in the right direction. Timing-shape claims
//! live in the release-mode `figures` binary; here we assert everything
//! that is robust under an unoptimized test build.

// Harness code, exempt from the library panic policy: an unwrap here
// fails the run loudly, which is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use enviro_bench::workload::{build, Scale};
use enviro_bench::{ablations, fig6a, fig6b, fig7a, fig7b};
use enviro_meter::QueryMethod;

#[test]
fn fig6b_cover_nrmse_below_naive_across_h() {
    let w = build(Scale::Quick, 100);
    let rows = fig6b::run(&w, &[40, 120, 240]);
    for h in [40usize, 120, 240] {
        let of = |m: QueryMethod| {
            rows.iter()
                .find(|r| r.h == h && r.method == m)
                .unwrap()
                .common_nrmse_percent
        };
        assert!(
            of(QueryMethod::ModelCover) < of(QueryMethod::Naive),
            "H={h}: cover {} vs naive {}",
            of(QueryMethod::ModelCover),
            of(QueryMethod::Naive)
        );
    }
}

#[test]
fn fig6a_cover_answers_everything_and_raw_methods_agree() {
    let w = build(Scale::Quick, 101);
    let rows = fig6a::run(&w, &[120]);
    let of = |m: QueryMethod| rows.iter().find(|r| r.method == m).unwrap();
    assert_eq!(of(QueryMethod::ModelCover).answered, w.queries.len());
    // Identical semantics ⇒ identical answered counts for raw methods.
    assert_eq!(
        of(QueryMethod::Naive).answered,
        of(QueryMethod::RTree).answered
    );
    assert_eq!(
        of(QueryMethod::Naive).answered,
        of(QueryMethod::VpTree).answered
    );
}

#[test]
fn fig7a_memory_ordering_cover_naive_rtree_vptree() {
    let rows = fig7a::run(3);
    let of = |m: QueryMethod| {
        rows.iter()
            .find(|r| r.method == m)
            .map(|r| r.mean_bytes)
            .unwrap()
    };
    let cover = of(QueryMethod::ModelCover);
    assert!(cover * 5.0 < of(QueryMethod::Naive));
    assert!(of(QueryMethod::Naive) < of(QueryMethod::RTree));
    assert!(of(QueryMethod::RTree) < of(QueryMethod::VpTree));
}

#[test]
fn fig7b_model_cache_dominates_on_all_three_axes() {
    let c = fig7b::run(102);
    assert!(c.sent_factor() > 20.0, "sent {}", c.sent_factor());
    assert!(
        c.received_factor() > 2.0,
        "received {}",
        c.received_factor()
    );
    assert!(c.time_factor() > 20.0, "time {}", c.time_factor());
    // And the answers are the same values the baseline got.
    for (a, b) in c.baseline.values.iter().zip(&c.model_cache.values) {
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn abl_tau_tighter_threshold_means_more_models() {
    let w = build(Scale::Quick, 103);
    let rows = ablations::tau_sweep(&w, 240, &[8.0, 2.0, 0.5]);
    assert!(rows[2].mean_models >= rows[1].mean_models);
    assert!(rows[1].mean_models >= rows[0].mean_models);
}

#[test]
fn abl_spread_cover_wins_on_corridor_and_degrades_off_it() {
    let w = build(Scale::Quick, 104);
    let rows = ablations::spread_sweep(&w, 240, &[0.0, 800.0]);
    // On the corridors the cover beats naive (the fig6b claim)...
    assert!(rows[0].cover.nrmse_percent < rows[0].naive.nrmse_percent);
    // ...and degrades with distance from the data, while the radius-bounded
    // average stays roughly flat (it keeps averaging the same on-track
    // tuples). This crossover is the honest limit of model extrapolation.
    assert!(rows[1].cover.nrmse_percent > rows[0].cover.nrmse_percent);
    let ratio = rows[1].naive.nrmse_percent / rows[0].naive.nrmse_percent.max(1e-9);
    assert!((0.5..2.0).contains(&ratio), "naive ratio {ratio}");
}

#[test]
fn abl_codec_binary_beats_text_on_bytes_not_values() {
    let rows = ablations::codec_sweep(105);
    let bin = &rows[0].comparison;
    let txt = &rows[1].comparison;
    assert!(
        txt.baseline.usage.sent_bytes > bin.baseline.usage.sent_bytes,
        "text must cost more uplink"
    );
    for (a, b) in bin.baseline.values.iter().zip(&txt.baseline.values) {
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6),
            (None, None) => {}
            other => panic!("{other:?}"),
        }
    }
}
