/root/repo/target/debug/deps/criterion-939eb5f2bfb1007c.d: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-939eb5f2bfb1007c.rmeta: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
