/root/repo/target/debug/deps/xtask-f8af905e1e49101f.d: crates/xtask/src/lib.rs crates/xtask/src/invariants.rs crates/xtask/src/layering.rs crates/xtask/src/manifest.rs crates/xtask/src/ratchet.rs crates/xtask/src/scan.rs

/root/repo/target/debug/deps/xtask-f8af905e1e49101f: crates/xtask/src/lib.rs crates/xtask/src/invariants.rs crates/xtask/src/layering.rs crates/xtask/src/manifest.rs crates/xtask/src/ratchet.rs crates/xtask/src/scan.rs

crates/xtask/src/lib.rs:
crates/xtask/src/invariants.rs:
crates/xtask/src/layering.rs:
crates/xtask/src/manifest.rs:
crates/xtask/src/ratchet.rs:
crates/xtask/src/scan.rs:
