/root/repo/target/debug/deps/selftest-3329604b84a8a810.d: /root/repo/clippy.toml crates/xtask/tests/selftest.rs Cargo.toml

/root/repo/target/debug/deps/libselftest-3329604b84a8a810.rmeta: /root/repo/clippy.toml crates/xtask/tests/selftest.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/tests/selftest.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
