/root/repo/target/debug/deps/bytes-64e158cc5af85011.d: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-64e158cc5af85011.rmeta: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
