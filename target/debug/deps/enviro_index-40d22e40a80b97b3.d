/root/repo/target/debug/deps/enviro_index-40d22e40a80b97b3.d: /root/repo/clippy.toml crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_index-40d22e40a80b97b3.rmeta: /root/repo/clippy.toml crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs Cargo.toml

/root/repo/clippy.toml:
crates/index/src/lib.rs:
crates/index/src/grid_index.rs:
crates/index/src/kdtree.rs:
crates/index/src/rtree.rs:
crates/index/src/vptree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
