/root/repo/target/debug/deps/figures-829aa20b6d3e59c6.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-829aa20b6d3e59c6: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
