/root/repo/target/debug/deps/criterion-6161139bc6d62419.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6161139bc6d62419.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6161139bc6d62419.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
