/root/repo/target/debug/deps/paper_claims-0f7da8ee6634226f.d: /root/repo/clippy.toml crates/bench/../../tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-0f7da8ee6634226f.rmeta: /root/repo/clippy.toml crates/bench/../../tests/paper_claims.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/../../tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
