/root/repo/target/debug/deps/enviro_cli-6cda04efebf8ae9b.d: /root/repo/clippy.toml crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_cli-6cda04efebf8ae9b.rmeta: /root/repo/clippy.toml crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/clippy.toml:
crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
