/root/repo/target/debug/deps/enviro_index-dd9de7de29bd2140.d: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

/root/repo/target/debug/deps/enviro_index-dd9de7de29bd2140: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

crates/index/src/lib.rs:
crates/index/src/grid_index.rs:
crates/index/src/kdtree.rs:
crates/index/src/rtree.rs:
crates/index/src/vptree.rs:
