/root/repo/target/debug/deps/deployment-a0d885e31db5425d.d: /root/repo/clippy.toml crates/net/../../tests/deployment.rs Cargo.toml

/root/repo/target/debug/deps/libdeployment-a0d885e31db5425d.rmeta: /root/repo/clippy.toml crates/net/../../tests/deployment.rs Cargo.toml

/root/repo/clippy.toml:
crates/net/../../tests/deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
