/root/repo/target/debug/deps/end_to_end-f8a07f059a8b907a.d: crates/core/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f8a07f059a8b907a: crates/core/../../tests/end_to_end.rs

crates/core/../../tests/end_to_end.rs:
