/root/repo/target/debug/deps/window_properties-62f5d3f08ae1a7b5.d: /root/repo/clippy.toml crates/data/tests/window_properties.rs Cargo.toml

/root/repo/target/debug/deps/libwindow_properties-62f5d3f08ae1a7b5.rmeta: /root/repo/clippy.toml crates/data/tests/window_properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/data/tests/window_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
