/root/repo/target/debug/deps/enviro_bench-7517b7aee5be13ef.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libenviro_bench-7517b7aee5be13ef.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libenviro_bench-7517b7aee5be13ef.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/fig6a.rs:
crates/bench/src/fig6b.rs:
crates/bench/src/fig7a.rs:
crates/bench/src/fig7b.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
