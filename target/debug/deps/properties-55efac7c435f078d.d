/root/repo/target/debug/deps/properties-55efac7c435f078d.d: /root/repo/clippy.toml crates/index/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-55efac7c435f078d.rmeta: /root/repo/clippy.toml crates/index/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/index/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
