/root/repo/target/debug/deps/rand-a994e6d08d31c698.d: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-a994e6d08d31c698.rmeta: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
