/root/repo/target/debug/deps/enviro_data-ae68f490ab0e08c2.d: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_data-ae68f490ab0e08c2.rmeta: /root/repo/clippy.toml crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs Cargo.toml

/root/repo/clippy.toml:
crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/field.rs:
crates/data/src/memsize_impls.rs:
crates/data/src/pollutant.rs:
crates/data/src/sim.rs:
crates/data/src/tuple.rs:
crates/data/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
