/root/repo/target/debug/deps/enviro_storage-6a40637e002838f6.d: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/debug/deps/enviro_storage-6a40637e002838f6: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

crates/storage/src/lib.rs:
crates/storage/src/crc.rs:
crates/storage/src/record.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
