/root/repo/target/debug/deps/codec-e0e63b9e25bfa2ed.d: /root/repo/clippy.toml crates/bench/benches/codec.rs Cargo.toml

/root/repo/target/debug/deps/libcodec-e0e63b9e25bfa2ed.rmeta: /root/repo/clippy.toml crates/bench/benches/codec.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
