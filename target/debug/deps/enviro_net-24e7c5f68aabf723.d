/root/repo/target/debug/deps/enviro_net-24e7c5f68aabf723.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/enviro_net-24e7c5f68aabf723: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/codec.rs:
crates/net/src/link.rs:
crates/net/src/protocol.rs:
crates/net/src/server.rs:
crates/net/src/transport.rs:
