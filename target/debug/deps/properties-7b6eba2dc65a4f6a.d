/root/repo/target/debug/deps/properties-7b6eba2dc65a4f6a.d: /root/repo/clippy.toml crates/storage/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7b6eba2dc65a4f6a.rmeta: /root/repo/clippy.toml crates/storage/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/storage/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
