/root/repo/target/debug/deps/enviro_data-98b6302fe1ac2ef5.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

/root/repo/target/debug/deps/libenviro_data-98b6302fe1ac2ef5.rlib: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

/root/repo/target/debug/deps/libenviro_data-98b6302fe1ac2ef5.rmeta: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/field.rs:
crates/data/src/memsize_impls.rs:
crates/data/src/pollutant.rs:
crates/data/src/sim.rs:
crates/data/src/tuple.rs:
crates/data/src/window.rs:
