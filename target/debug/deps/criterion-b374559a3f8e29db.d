/root/repo/target/debug/deps/criterion-b374559a3f8e29db.d: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-b374559a3f8e29db.rmeta: /root/repo/clippy.toml vendor/criterion/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
