/root/repo/target/debug/deps/adkmn_build-974012c0ad282f1b.d: /root/repo/clippy.toml crates/bench/benches/adkmn_build.rs Cargo.toml

/root/repo/target/debug/deps/libadkmn_build-974012c0ad282f1b.rmeta: /root/repo/clippy.toml crates/bench/benches/adkmn_build.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/adkmn_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
