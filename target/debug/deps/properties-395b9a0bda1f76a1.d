/root/repo/target/debug/deps/properties-395b9a0bda1f76a1.d: crates/geo/tests/properties.rs

/root/repo/target/debug/deps/properties-395b9a0bda1f76a1: crates/geo/tests/properties.rs

crates/geo/tests/properties.rs:
