/root/repo/target/debug/deps/xtask-e9cda8f165ea47d2.d: /root/repo/clippy.toml crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-e9cda8f165ea47d2.rmeta: /root/repo/clippy.toml crates/xtask/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
