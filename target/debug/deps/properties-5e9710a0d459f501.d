/root/repo/target/debug/deps/properties-5e9710a0d459f501.d: crates/linalg/tests/properties.rs

/root/repo/target/debug/deps/properties-5e9710a0d459f501: crates/linalg/tests/properties.rs

crates/linalg/tests/properties.rs:
