/root/repo/target/debug/deps/properties-90d08b0230d3d230.d: crates/index/tests/properties.rs

/root/repo/target/debug/deps/properties-90d08b0230d3d230: crates/index/tests/properties.rs

crates/index/tests/properties.rs:
