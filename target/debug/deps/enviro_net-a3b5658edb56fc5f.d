/root/repo/target/debug/deps/enviro_net-a3b5658edb56fc5f.d: /root/repo/clippy.toml crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_net-a3b5658edb56fc5f.rmeta: /root/repo/clippy.toml crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs Cargo.toml

/root/repo/clippy.toml:
crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/codec.rs:
crates/net/src/link.rs:
crates/net/src/protocol.rs:
crates/net/src/server.rs:
crates/net/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
