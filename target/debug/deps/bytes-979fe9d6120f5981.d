/root/repo/target/debug/deps/bytes-979fe9d6120f5981.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-979fe9d6120f5981.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-979fe9d6120f5981.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
