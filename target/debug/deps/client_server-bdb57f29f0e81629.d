/root/repo/target/debug/deps/client_server-bdb57f29f0e81629.d: crates/net/../../tests/client_server.rs

/root/repo/target/debug/deps/client_server-bdb57f29f0e81629: crates/net/../../tests/client_server.rs

crates/net/../../tests/client_server.rs:
