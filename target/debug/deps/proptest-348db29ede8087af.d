/root/repo/target/debug/deps/proptest-348db29ede8087af.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-348db29ede8087af.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-348db29ede8087af.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/rng.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
