/root/repo/target/debug/deps/figures-62a74bcf93f235e1.d: /root/repo/clippy.toml crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-62a74bcf93f235e1.rmeta: /root/repo/clippy.toml crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
