/root/repo/target/debug/deps/enviro_storage-cc5bde839b0351b8.d: /root/repo/clippy.toml crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_storage-cc5bde839b0351b8.rmeta: /root/repo/clippy.toml crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs Cargo.toml

/root/repo/clippy.toml:
crates/storage/src/lib.rs:
crates/storage/src/crc.rs:
crates/storage/src/record.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
