/root/repo/target/debug/deps/enviro-560e7c4925e742a6.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/enviro-560e7c4925e742a6: crates/cli/src/main.rs

crates/cli/src/main.rs:
