/root/repo/target/debug/deps/fig7b_bandwidth-bc5596349b305e3b.d: /root/repo/clippy.toml crates/bench/benches/fig7b_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig7b_bandwidth-bc5596349b305e3b.rmeta: /root/repo/clippy.toml crates/bench/benches/fig7b_bandwidth.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/fig7b_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
