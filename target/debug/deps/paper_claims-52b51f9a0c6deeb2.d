/root/repo/target/debug/deps/paper_claims-52b51f9a0c6deeb2.d: crates/bench/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-52b51f9a0c6deeb2: crates/bench/../../tests/paper_claims.rs

crates/bench/../../tests/paper_claims.rs:
