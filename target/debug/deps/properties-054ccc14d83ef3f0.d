/root/repo/target/debug/deps/properties-054ccc14d83ef3f0.d: crates/storage/tests/properties.rs

/root/repo/target/debug/deps/properties-054ccc14d83ef3f0: crates/storage/tests/properties.rs

crates/storage/tests/properties.rs:
