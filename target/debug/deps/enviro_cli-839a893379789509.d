/root/repo/target/debug/deps/enviro_cli-839a893379789509.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/enviro_cli-839a893379789509: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
