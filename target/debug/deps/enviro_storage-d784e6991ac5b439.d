/root/repo/target/debug/deps/enviro_storage-d784e6991ac5b439.d: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/debug/deps/libenviro_storage-d784e6991ac5b439.rlib: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/debug/deps/libenviro_storage-d784e6991ac5b439.rmeta: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

crates/storage/src/lib.rs:
crates/storage/src/crc.rs:
crates/storage/src/record.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
