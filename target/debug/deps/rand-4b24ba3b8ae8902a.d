/root/repo/target/debug/deps/rand-4b24ba3b8ae8902a.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-4b24ba3b8ae8902a.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
