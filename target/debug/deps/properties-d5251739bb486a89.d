/root/repo/target/debug/deps/properties-d5251739bb486a89.d: /root/repo/clippy.toml crates/linalg/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d5251739bb486a89.rmeta: /root/repo/clippy.toml crates/linalg/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
