/root/repo/target/debug/deps/enviro_cli-81a4703a5c2842f7.d: /root/repo/clippy.toml crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_cli-81a4703a5c2842f7.rmeta: /root/repo/clippy.toml crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/clippy.toml:
crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
