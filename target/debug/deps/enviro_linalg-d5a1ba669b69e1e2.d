/root/repo/target/debug/deps/enviro_linalg-d5a1ba669b69e1e2.d: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

/root/repo/target/debug/deps/enviro_linalg-d5a1ba669b69e1e2: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
