/root/repo/target/debug/deps/crossbeam-4ae34faffa0ded67.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-4ae34faffa0ded67: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
