/root/repo/target/debug/deps/enviro_geo-1eff45f9d0dfe1c9.d: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

/root/repo/target/debug/deps/libenviro_geo-1eff45f9d0dfe1c9.rlib: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

/root/repo/target/debug/deps/libenviro_geo-1eff45f9d0dfe1c9.rmeta: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

crates/geo/src/lib.rs:
crates/geo/src/bbox.rs:
crates/geo/src/grid.rs:
crates/geo/src/memsize_impls.rs:
crates/geo/src/point.rs:
crates/geo/src/polyline.rs:
crates/geo/src/projection.rs:
