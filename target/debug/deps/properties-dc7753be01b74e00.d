/root/repo/target/debug/deps/properties-dc7753be01b74e00.d: /root/repo/clippy.toml crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-dc7753be01b74e00.rmeta: /root/repo/clippy.toml crates/core/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
