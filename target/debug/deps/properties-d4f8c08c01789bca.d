/root/repo/target/debug/deps/properties-d4f8c08c01789bca.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-d4f8c08c01789bca: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
