/root/repo/target/debug/deps/enviro_cli-d2da89c0d3bd1f83.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libenviro_cli-d2da89c0d3bd1f83.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libenviro_cli-d2da89c0d3bd1f83.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
