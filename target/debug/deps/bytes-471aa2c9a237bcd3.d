/root/repo/target/debug/deps/bytes-471aa2c9a237bcd3.d: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-471aa2c9a237bcd3.rmeta: /root/repo/clippy.toml vendor/bytes/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
