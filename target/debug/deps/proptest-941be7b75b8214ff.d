/root/repo/target/debug/deps/proptest-941be7b75b8214ff.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-941be7b75b8214ff.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/rng.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
