/root/repo/target/debug/deps/fig6a_query_time-e6f8e3c73552f205.d: /root/repo/clippy.toml crates/bench/benches/fig6a_query_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig6a_query_time-e6f8e3c73552f205.rmeta: /root/repo/clippy.toml crates/bench/benches/fig6a_query_time.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/fig6a_query_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
