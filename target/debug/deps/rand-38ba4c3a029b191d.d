/root/repo/target/debug/deps/rand-38ba4c3a029b191d.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-38ba4c3a029b191d: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
