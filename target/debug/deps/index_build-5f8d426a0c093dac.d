/root/repo/target/debug/deps/index_build-5f8d426a0c093dac.d: /root/repo/clippy.toml crates/bench/benches/index_build.rs Cargo.toml

/root/repo/target/debug/deps/libindex_build-5f8d426a0c093dac.rmeta: /root/repo/clippy.toml crates/bench/benches/index_build.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/index_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
