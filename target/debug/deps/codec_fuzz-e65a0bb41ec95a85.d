/root/repo/target/debug/deps/codec_fuzz-e65a0bb41ec95a85.d: /root/repo/clippy.toml crates/net/tests/codec_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libcodec_fuzz-e65a0bb41ec95a85.rmeta: /root/repo/clippy.toml crates/net/tests/codec_fuzz.rs Cargo.toml

/root/repo/clippy.toml:
crates/net/tests/codec_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
