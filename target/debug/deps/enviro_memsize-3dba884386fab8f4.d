/root/repo/target/debug/deps/enviro_memsize-3dba884386fab8f4.d: /root/repo/clippy.toml crates/memsize/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_memsize-3dba884386fab8f4.rmeta: /root/repo/clippy.toml crates/memsize/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/memsize/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
