/root/repo/target/debug/deps/enviro_memsize-708bbc3c3b78c588.d: crates/memsize/src/lib.rs

/root/repo/target/debug/deps/libenviro_memsize-708bbc3c3b78c588.rlib: crates/memsize/src/lib.rs

/root/repo/target/debug/deps/libenviro_memsize-708bbc3c3b78c588.rmeta: crates/memsize/src/lib.rs

crates/memsize/src/lib.rs:
