/root/repo/target/debug/deps/deployment-1a73c8452cd2a4dc.d: crates/net/../../tests/deployment.rs

/root/repo/target/debug/deps/deployment-1a73c8452cd2a4dc: crates/net/../../tests/deployment.rs

crates/net/../../tests/deployment.rs:
