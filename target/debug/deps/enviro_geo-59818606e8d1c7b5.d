/root/repo/target/debug/deps/enviro_geo-59818606e8d1c7b5.d: /root/repo/clippy.toml crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_geo-59818606e8d1c7b5.rmeta: /root/repo/clippy.toml crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs Cargo.toml

/root/repo/clippy.toml:
crates/geo/src/lib.rs:
crates/geo/src/bbox.rs:
crates/geo/src/grid.rs:
crates/geo/src/memsize_impls.rs:
crates/geo/src/point.rs:
crates/geo/src/polyline.rs:
crates/geo/src/projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
