/root/repo/target/debug/deps/crossbeam-fe7e85d58645d227.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-fe7e85d58645d227.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-fe7e85d58645d227.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
