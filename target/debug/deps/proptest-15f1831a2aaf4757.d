/root/repo/target/debug/deps/proptest-15f1831a2aaf4757.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-15f1831a2aaf4757: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/rng.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
