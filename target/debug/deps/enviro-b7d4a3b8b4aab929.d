/root/repo/target/debug/deps/enviro-b7d4a3b8b4aab929.d: /root/repo/clippy.toml crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libenviro-b7d4a3b8b4aab929.rmeta: /root/repo/clippy.toml crates/cli/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
