/root/repo/target/debug/deps/enviro_index-09d00dd3e08538b4.d: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

/root/repo/target/debug/deps/libenviro_index-09d00dd3e08538b4.rlib: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

/root/repo/target/debug/deps/libenviro_index-09d00dd3e08538b4.rmeta: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

crates/index/src/lib.rs:
crates/index/src/grid_index.rs:
crates/index/src/kdtree.rs:
crates/index/src/rtree.rs:
crates/index/src/vptree.rs:
