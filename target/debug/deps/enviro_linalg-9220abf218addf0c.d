/root/repo/target/debug/deps/enviro_linalg-9220abf218addf0c.d: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_linalg-9220abf218addf0c.rmeta: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
