/root/repo/target/debug/deps/enviro-85e112310d178d24.d: /root/repo/clippy.toml crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libenviro-85e112310d178d24.rmeta: /root/repo/clippy.toml crates/cli/src/main.rs Cargo.toml

/root/repo/clippy.toml:
crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
