/root/repo/target/debug/deps/bytes-3fd9616ee83f76b6.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-3fd9616ee83f76b6: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
