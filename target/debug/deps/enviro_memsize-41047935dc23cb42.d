/root/repo/target/debug/deps/enviro_memsize-41047935dc23cb42.d: crates/memsize/src/lib.rs

/root/repo/target/debug/deps/enviro_memsize-41047935dc23cb42: crates/memsize/src/lib.rs

crates/memsize/src/lib.rs:
