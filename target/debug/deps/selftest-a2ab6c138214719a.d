/root/repo/target/debug/deps/selftest-a2ab6c138214719a.d: crates/xtask/tests/selftest.rs

/root/repo/target/debug/deps/selftest-a2ab6c138214719a: crates/xtask/tests/selftest.rs

crates/xtask/tests/selftest.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CARGO_TARGET_TMPDIR=/root/repo/target/tmp
