/root/repo/target/debug/deps/enviro_bench-d7fe73034237d2c7.d: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libenviro_bench-d7fe73034237d2c7.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/fig6a.rs:
crates/bench/src/fig6b.rs:
crates/bench/src/fig7a.rs:
crates/bench/src/fig7b.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
