/root/repo/target/debug/deps/figures-a523706151602ec2.d: /root/repo/clippy.toml crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-a523706151602ec2.rmeta: /root/repo/clippy.toml crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
