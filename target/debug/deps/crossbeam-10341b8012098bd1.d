/root/repo/target/debug/deps/crossbeam-10341b8012098bd1.d: /root/repo/clippy.toml vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-10341b8012098bd1.rmeta: /root/repo/clippy.toml vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
