/root/repo/target/debug/deps/figures-296b40b1958c3987.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-296b40b1958c3987: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
