/root/repo/target/debug/deps/enviro_data-88c6fe334fac1fd6.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

/root/repo/target/debug/deps/enviro_data-88c6fe334fac1fd6: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/field.rs:
crates/data/src/memsize_impls.rs:
crates/data/src/pollutant.rs:
crates/data/src/sim.rs:
crates/data/src/tuple.rs:
crates/data/src/window.rs:
