/root/repo/target/debug/deps/enviro_linalg-759a9676b111be98.d: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

/root/repo/target/debug/deps/libenviro_linalg-759a9676b111be98.rlib: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

/root/repo/target/debug/deps/libenviro_linalg-759a9676b111be98.rmeta: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
