/root/repo/target/debug/deps/codec_fuzz-8a6797b141e4de67.d: crates/net/tests/codec_fuzz.rs

/root/repo/target/debug/deps/codec_fuzz-8a6797b141e4de67: crates/net/tests/codec_fuzz.rs

crates/net/tests/codec_fuzz.rs:
