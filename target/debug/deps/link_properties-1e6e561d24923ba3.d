/root/repo/target/debug/deps/link_properties-1e6e561d24923ba3.d: /root/repo/clippy.toml crates/net/tests/link_properties.rs Cargo.toml

/root/repo/target/debug/deps/liblink_properties-1e6e561d24923ba3.rmeta: /root/repo/clippy.toml crates/net/tests/link_properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/net/tests/link_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
