/root/repo/target/debug/deps/criterion-dd24d715920d8c5f.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-dd24d715920d8c5f: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
