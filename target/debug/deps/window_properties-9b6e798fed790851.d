/root/repo/target/debug/deps/window_properties-9b6e798fed790851.d: crates/data/tests/window_properties.rs

/root/repo/target/debug/deps/window_properties-9b6e798fed790851: crates/data/tests/window_properties.rs

crates/data/tests/window_properties.rs:
