/root/repo/target/debug/deps/client_server-be208d6e342f1d4b.d: /root/repo/clippy.toml crates/net/../../tests/client_server.rs Cargo.toml

/root/repo/target/debug/deps/libclient_server-be208d6e342f1d4b.rmeta: /root/repo/clippy.toml crates/net/../../tests/client_server.rs Cargo.toml

/root/repo/clippy.toml:
crates/net/../../tests/client_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
