/root/repo/target/debug/deps/properties-47ee56ac2351b865.d: /root/repo/clippy.toml crates/geo/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-47ee56ac2351b865.rmeta: /root/repo/clippy.toml crates/geo/tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
crates/geo/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
