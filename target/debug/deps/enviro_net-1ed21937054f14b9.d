/root/repo/target/debug/deps/enviro_net-1ed21937054f14b9.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libenviro_net-1ed21937054f14b9.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

/root/repo/target/debug/deps/libenviro_net-1ed21937054f14b9.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/codec.rs:
crates/net/src/link.rs:
crates/net/src/protocol.rs:
crates/net/src/server.rs:
crates/net/src/transport.rs:
