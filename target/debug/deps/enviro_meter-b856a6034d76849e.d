/root/repo/target/debug/deps/enviro_meter-b856a6034d76849e.d: crates/core/src/lib.rs crates/core/src/cluster/mod.rs crates/core/src/cluster/adkmn.rs crates/core/src/cluster/kmeans.rs crates/core/src/cover.rs crates/core/src/eval.rs crates/core/src/heatmap.rs crates/core/src/live.rs crates/core/src/model/mod.rs crates/core/src/model/error.rs crates/core/src/model/linear.rs crates/core/src/platform.rs crates/core/src/query/mod.rs crates/core/src/query/cover_proc.rs crates/core/src/query/engine.rs crates/core/src/query/idw.rs crates/core/src/query/indexed.rs crates/core/src/query/naive.rs crates/core/src/route.rs

/root/repo/target/debug/deps/libenviro_meter-b856a6034d76849e.rlib: crates/core/src/lib.rs crates/core/src/cluster/mod.rs crates/core/src/cluster/adkmn.rs crates/core/src/cluster/kmeans.rs crates/core/src/cover.rs crates/core/src/eval.rs crates/core/src/heatmap.rs crates/core/src/live.rs crates/core/src/model/mod.rs crates/core/src/model/error.rs crates/core/src/model/linear.rs crates/core/src/platform.rs crates/core/src/query/mod.rs crates/core/src/query/cover_proc.rs crates/core/src/query/engine.rs crates/core/src/query/idw.rs crates/core/src/query/indexed.rs crates/core/src/query/naive.rs crates/core/src/route.rs

/root/repo/target/debug/deps/libenviro_meter-b856a6034d76849e.rmeta: crates/core/src/lib.rs crates/core/src/cluster/mod.rs crates/core/src/cluster/adkmn.rs crates/core/src/cluster/kmeans.rs crates/core/src/cover.rs crates/core/src/eval.rs crates/core/src/heatmap.rs crates/core/src/live.rs crates/core/src/model/mod.rs crates/core/src/model/error.rs crates/core/src/model/linear.rs crates/core/src/platform.rs crates/core/src/query/mod.rs crates/core/src/query/cover_proc.rs crates/core/src/query/engine.rs crates/core/src/query/idw.rs crates/core/src/query/indexed.rs crates/core/src/query/naive.rs crates/core/src/route.rs

crates/core/src/lib.rs:
crates/core/src/cluster/mod.rs:
crates/core/src/cluster/adkmn.rs:
crates/core/src/cluster/kmeans.rs:
crates/core/src/cover.rs:
crates/core/src/eval.rs:
crates/core/src/heatmap.rs:
crates/core/src/live.rs:
crates/core/src/model/mod.rs:
crates/core/src/model/error.rs:
crates/core/src/model/linear.rs:
crates/core/src/platform.rs:
crates/core/src/query/mod.rs:
crates/core/src/query/cover_proc.rs:
crates/core/src/query/engine.rs:
crates/core/src/query/idw.rs:
crates/core/src/query/indexed.rs:
crates/core/src/query/naive.rs:
crates/core/src/route.rs:
