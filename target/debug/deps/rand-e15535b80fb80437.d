/root/repo/target/debug/deps/rand-e15535b80fb80437.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e15535b80fb80437.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e15535b80fb80437.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
