/root/repo/target/debug/deps/link_properties-0dea08c385ff5a4e.d: crates/net/tests/link_properties.rs

/root/repo/target/debug/deps/link_properties-0dea08c385ff5a4e: crates/net/tests/link_properties.rs

crates/net/tests/link_properties.rs:
