/root/repo/target/debug/deps/xtask-9101417f1f446fef.d: /root/repo/clippy.toml crates/xtask/src/lib.rs crates/xtask/src/invariants.rs crates/xtask/src/layering.rs crates/xtask/src/manifest.rs crates/xtask/src/ratchet.rs crates/xtask/src/scan.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-9101417f1f446fef.rmeta: /root/repo/clippy.toml crates/xtask/src/lib.rs crates/xtask/src/invariants.rs crates/xtask/src/layering.rs crates/xtask/src/manifest.rs crates/xtask/src/ratchet.rs crates/xtask/src/scan.rs Cargo.toml

/root/repo/clippy.toml:
crates/xtask/src/lib.rs:
crates/xtask/src/invariants.rs:
crates/xtask/src/layering.rs:
crates/xtask/src/manifest.rs:
crates/xtask/src/ratchet.rs:
crates/xtask/src/scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
