/root/repo/target/debug/deps/enviro_geo-c3e54cee9f0028a1.d: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

/root/repo/target/debug/deps/enviro_geo-c3e54cee9f0028a1: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

crates/geo/src/lib.rs:
crates/geo/src/bbox.rs:
crates/geo/src/grid.rs:
crates/geo/src/memsize_impls.rs:
crates/geo/src/point.rs:
crates/geo/src/polyline.rs:
crates/geo/src/projection.rs:
