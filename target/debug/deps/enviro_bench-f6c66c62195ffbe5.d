/root/repo/target/debug/deps/enviro_bench-f6c66c62195ffbe5.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/enviro_bench-f6c66c62195ffbe5: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/fig6a.rs:
crates/bench/src/fig6b.rs:
crates/bench/src/fig7a.rs:
crates/bench/src/fig7b.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
