/root/repo/target/debug/examples/commute_route-582db00cb11de645.d: /root/repo/clippy.toml crates/core/../../examples/commute_route.rs Cargo.toml

/root/repo/target/debug/examples/libcommute_route-582db00cb11de645.rmeta: /root/repo/clippy.toml crates/core/../../examples/commute_route.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/../../examples/commute_route.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
