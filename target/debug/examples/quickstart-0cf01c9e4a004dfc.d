/root/repo/target/debug/examples/quickstart-0cf01c9e4a004dfc.d: /root/repo/clippy.toml crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0cf01c9e4a004dfc.rmeta: /root/repo/clippy.toml crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
