/root/repo/target/debug/examples/csv_export-5bd5f3dc0d10bf54.d: crates/data/../../examples/csv_export.rs

/root/repo/target/debug/examples/csv_export-5bd5f3dc0d10bf54: crates/data/../../examples/csv_export.rs

crates/data/../../examples/csv_export.rs:
