/root/repo/target/debug/examples/csv_export-3cf210791203acb0.d: /root/repo/clippy.toml crates/data/../../examples/csv_export.rs Cargo.toml

/root/repo/target/debug/examples/libcsv_export-3cf210791203acb0.rmeta: /root/repo/clippy.toml crates/data/../../examples/csv_export.rs Cargo.toml

/root/repo/clippy.toml:
crates/data/../../examples/csv_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
