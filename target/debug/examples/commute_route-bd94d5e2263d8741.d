/root/repo/target/debug/examples/commute_route-bd94d5e2263d8741.d: crates/core/../../examples/commute_route.rs

/root/repo/target/debug/examples/commute_route-bd94d5e2263d8741: crates/core/../../examples/commute_route.rs

crates/core/../../examples/commute_route.rs:
