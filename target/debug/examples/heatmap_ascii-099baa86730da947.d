/root/repo/target/debug/examples/heatmap_ascii-099baa86730da947.d: crates/core/../../examples/heatmap_ascii.rs

/root/repo/target/debug/examples/heatmap_ascii-099baa86730da947: crates/core/../../examples/heatmap_ascii.rs

crates/core/../../examples/heatmap_ascii.rs:
