/root/repo/target/debug/examples/bandwidth_demo-42f287a16fdc5bff.d: /root/repo/clippy.toml crates/net/../../examples/bandwidth_demo.rs Cargo.toml

/root/repo/target/debug/examples/libbandwidth_demo-42f287a16fdc5bff.rmeta: /root/repo/clippy.toml crates/net/../../examples/bandwidth_demo.rs Cargo.toml

/root/repo/clippy.toml:
crates/net/../../examples/bandwidth_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
