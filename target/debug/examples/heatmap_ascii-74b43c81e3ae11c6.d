/root/repo/target/debug/examples/heatmap_ascii-74b43c81e3ae11c6.d: /root/repo/clippy.toml crates/core/../../examples/heatmap_ascii.rs Cargo.toml

/root/repo/target/debug/examples/libheatmap_ascii-74b43c81e3ae11c6.rmeta: /root/repo/clippy.toml crates/core/../../examples/heatmap_ascii.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/../../examples/heatmap_ascii.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
