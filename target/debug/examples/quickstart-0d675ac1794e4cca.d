/root/repo/target/debug/examples/quickstart-0d675ac1794e4cca.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0d675ac1794e4cca: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
