/root/repo/target/debug/examples/live_ingest-2d88c4b9d5158b4a.d: /root/repo/clippy.toml crates/core/../../examples/live_ingest.rs Cargo.toml

/root/repo/target/debug/examples/liblive_ingest-2d88c4b9d5158b4a.rmeta: /root/repo/clippy.toml crates/core/../../examples/live_ingest.rs Cargo.toml

/root/repo/clippy.toml:
crates/core/../../examples/live_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
