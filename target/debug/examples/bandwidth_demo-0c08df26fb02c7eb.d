/root/repo/target/debug/examples/bandwidth_demo-0c08df26fb02c7eb.d: crates/net/../../examples/bandwidth_demo.rs

/root/repo/target/debug/examples/bandwidth_demo-0c08df26fb02c7eb: crates/net/../../examples/bandwidth_demo.rs

crates/net/../../examples/bandwidth_demo.rs:
