/root/repo/target/debug/examples/live_ingest-88b385dff09abc7c.d: crates/core/../../examples/live_ingest.rs

/root/repo/target/debug/examples/live_ingest-88b385dff09abc7c: crates/core/../../examples/live_ingest.rs

crates/core/../../examples/live_ingest.rs:
