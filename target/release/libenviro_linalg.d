/root/repo/target/release/libenviro_linalg.rlib: /root/repo/crates/linalg/src/lib.rs /root/repo/crates/linalg/src/matrix.rs /root/repo/crates/linalg/src/solve.rs
