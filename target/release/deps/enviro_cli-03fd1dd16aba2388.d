/root/repo/target/release/deps/enviro_cli-03fd1dd16aba2388.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libenviro_cli-03fd1dd16aba2388.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libenviro_cli-03fd1dd16aba2388.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
