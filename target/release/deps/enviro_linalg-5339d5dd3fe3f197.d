/root/repo/target/release/deps/enviro_linalg-5339d5dd3fe3f197.d: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

/root/repo/target/release/deps/libenviro_linalg-5339d5dd3fe3f197.rlib: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

/root/repo/target/release/deps/libenviro_linalg-5339d5dd3fe3f197.rmeta: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs

crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
