/root/repo/target/release/deps/crossbeam-5a650b8f7b3342e8.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-5a650b8f7b3342e8.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-5a650b8f7b3342e8.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
