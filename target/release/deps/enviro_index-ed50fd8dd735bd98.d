/root/repo/target/release/deps/enviro_index-ed50fd8dd735bd98.d: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

/root/repo/target/release/deps/libenviro_index-ed50fd8dd735bd98.rlib: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

/root/repo/target/release/deps/libenviro_index-ed50fd8dd735bd98.rmeta: crates/index/src/lib.rs crates/index/src/grid_index.rs crates/index/src/kdtree.rs crates/index/src/rtree.rs crates/index/src/vptree.rs

crates/index/src/lib.rs:
crates/index/src/grid_index.rs:
crates/index/src/kdtree.rs:
crates/index/src/rtree.rs:
crates/index/src/vptree.rs:
