/root/repo/target/release/deps/proptest-54122f5a4111b1f5.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-54122f5a4111b1f5.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-54122f5a4111b1f5.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/rng.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/rng.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
