/root/repo/target/release/deps/enviro_memsize-db0edef3ebbd1043.d: crates/memsize/src/lib.rs

/root/repo/target/release/deps/libenviro_memsize-db0edef3ebbd1043.rlib: crates/memsize/src/lib.rs

/root/repo/target/release/deps/libenviro_memsize-db0edef3ebbd1043.rmeta: crates/memsize/src/lib.rs

crates/memsize/src/lib.rs:
