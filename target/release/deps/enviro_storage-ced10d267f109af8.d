/root/repo/target/release/deps/enviro_storage-ced10d267f109af8.d: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/release/deps/libenviro_storage-ced10d267f109af8.rlib: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

/root/repo/target/release/deps/libenviro_storage-ced10d267f109af8.rmeta: crates/storage/src/lib.rs crates/storage/src/crc.rs crates/storage/src/record.rs crates/storage/src/segment.rs crates/storage/src/store.rs

crates/storage/src/lib.rs:
crates/storage/src/crc.rs:
crates/storage/src/record.rs:
crates/storage/src/segment.rs:
crates/storage/src/store.rs:
