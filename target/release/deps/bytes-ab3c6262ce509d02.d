/root/repo/target/release/deps/bytes-ab3c6262ce509d02.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ab3c6262ce509d02.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ab3c6262ce509d02.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
