/root/repo/target/release/deps/enviro-9060099365428223.d: crates/cli/src/main.rs

/root/repo/target/release/deps/enviro-9060099365428223: crates/cli/src/main.rs

crates/cli/src/main.rs:
