/root/repo/target/release/deps/xtask-34f7d781b42867db.d: crates/xtask/src/lib.rs crates/xtask/src/invariants.rs crates/xtask/src/layering.rs crates/xtask/src/manifest.rs crates/xtask/src/ratchet.rs crates/xtask/src/scan.rs

/root/repo/target/release/deps/libxtask-34f7d781b42867db.rlib: crates/xtask/src/lib.rs crates/xtask/src/invariants.rs crates/xtask/src/layering.rs crates/xtask/src/manifest.rs crates/xtask/src/ratchet.rs crates/xtask/src/scan.rs

/root/repo/target/release/deps/libxtask-34f7d781b42867db.rmeta: crates/xtask/src/lib.rs crates/xtask/src/invariants.rs crates/xtask/src/layering.rs crates/xtask/src/manifest.rs crates/xtask/src/ratchet.rs crates/xtask/src/scan.rs

crates/xtask/src/lib.rs:
crates/xtask/src/invariants.rs:
crates/xtask/src/layering.rs:
crates/xtask/src/manifest.rs:
crates/xtask/src/ratchet.rs:
crates/xtask/src/scan.rs:
