/root/repo/target/release/deps/enviro_geo-5004e19a02d409a7.d: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

/root/repo/target/release/deps/libenviro_geo-5004e19a02d409a7.rlib: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

/root/repo/target/release/deps/libenviro_geo-5004e19a02d409a7.rmeta: crates/geo/src/lib.rs crates/geo/src/bbox.rs crates/geo/src/grid.rs crates/geo/src/memsize_impls.rs crates/geo/src/point.rs crates/geo/src/polyline.rs crates/geo/src/projection.rs

crates/geo/src/lib.rs:
crates/geo/src/bbox.rs:
crates/geo/src/grid.rs:
crates/geo/src/memsize_impls.rs:
crates/geo/src/point.rs:
crates/geo/src/polyline.rs:
crates/geo/src/projection.rs:
