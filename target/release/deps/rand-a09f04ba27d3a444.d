/root/repo/target/release/deps/rand-a09f04ba27d3a444.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a09f04ba27d3a444.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a09f04ba27d3a444.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
