/root/repo/target/release/deps/enviro_net-285c2707e26ab33e.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libenviro_net-285c2707e26ab33e.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

/root/repo/target/release/deps/libenviro_net-285c2707e26ab33e.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/codec.rs crates/net/src/link.rs crates/net/src/protocol.rs crates/net/src/server.rs crates/net/src/transport.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/codec.rs:
crates/net/src/link.rs:
crates/net/src/protocol.rs:
crates/net/src/server.rs:
crates/net/src/transport.rs:
