/root/repo/target/release/deps/figures-51875ef82ec49456.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-51875ef82ec49456: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
