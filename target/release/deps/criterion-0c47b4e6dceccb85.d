/root/repo/target/release/deps/criterion-0c47b4e6dceccb85.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0c47b4e6dceccb85.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0c47b4e6dceccb85.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
