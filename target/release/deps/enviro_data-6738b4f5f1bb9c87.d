/root/repo/target/release/deps/enviro_data-6738b4f5f1bb9c87.d: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

/root/repo/target/release/deps/libenviro_data-6738b4f5f1bb9c87.rlib: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

/root/repo/target/release/deps/libenviro_data-6738b4f5f1bb9c87.rmeta: crates/data/src/lib.rs crates/data/src/csv.rs crates/data/src/dataset.rs crates/data/src/field.rs crates/data/src/memsize_impls.rs crates/data/src/pollutant.rs crates/data/src/sim.rs crates/data/src/tuple.rs crates/data/src/window.rs

crates/data/src/lib.rs:
crates/data/src/csv.rs:
crates/data/src/dataset.rs:
crates/data/src/field.rs:
crates/data/src/memsize_impls.rs:
crates/data/src/pollutant.rs:
crates/data/src/sim.rs:
crates/data/src/tuple.rs:
crates/data/src/window.rs:
