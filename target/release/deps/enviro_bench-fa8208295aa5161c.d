/root/repo/target/release/deps/enviro_bench-fa8208295aa5161c.d: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libenviro_bench-fa8208295aa5161c.rlib: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libenviro_bench-fa8208295aa5161c.rmeta: crates/bench/src/lib.rs crates/bench/src/ablations.rs crates/bench/src/fig6a.rs crates/bench/src/fig6b.rs crates/bench/src/fig7a.rs crates/bench/src/fig7b.rs crates/bench/src/table.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/ablations.rs:
crates/bench/src/fig6a.rs:
crates/bench/src/fig6b.rs:
crates/bench/src/fig7a.rs:
crates/bench/src/fig7b.rs:
crates/bench/src/table.rs:
crates/bench/src/workload.rs:
