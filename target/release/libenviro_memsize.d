/root/repo/target/release/libenviro_memsize.rlib: /root/repo/crates/memsize/src/lib.rs
